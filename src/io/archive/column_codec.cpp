#include "io/archive/column_codec.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "simd/dispatch.hpp"

namespace cal::io::archive {

namespace {

// Factor-column encodings (one tag byte per column per block); the
// public FactorTag mirrors these values.
enum : unsigned char {
  kColInt = 0,     // zigzag-delta varints
  kColReal = 1,    // raw LE doubles
  kColString = 2,  // dictionary + per-record indices
  kColMixed = 3,   // per-value kind tag; strings share the dictionary
};

void encode_delta_column(std::string& out, const RawRecord* records,
                         std::size_t n, std::size_t RawRecord::*field) {
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<std::int64_t>(records[i].*field);
    put_svarint(out, v - prev);
    prev = v;
  }
}

/// Streams a delta-varint payload through the dispatched kernel into
/// the running prefix values (two's-complement bit patterns).
void decode_delta_payload(ByteReader& r, std::size_t n, std::uint64_t* out) {
  const std::size_t used = simd::kernels().delta_varint_decode(
      reinterpret_cast<const unsigned char*>(r.cursor()), r.remaining(), n,
      out);
  if (used == simd::kDecodeError) {
    throw std::runtime_error("bbx: corrupt varint in delta column");
  }
  r.skip(used);
}

std::vector<std::size_t> decode_delta_column(ByteReader& r, std::size_t n) {
  static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                "bbx delta columns assume 64-bit size_t");
  std::vector<std::size_t> out(n);
  decode_delta_payload(r, n, reinterpret_cast<std::uint64_t*>(out.data()));
  return out;
}

/// Bulk-decodes n raw LE doubles (bounds-checked borrow, then one
/// dispatched pass instead of eight single-byte loads per value).
std::vector<double> decode_f64_column(ByteReader& r, std::size_t n) {
  std::vector<double> out(n);
  const char* src = r.bytes(n * sizeof(double));
  simd::kernels().f64le_decode(src, n, out.data());
  return out;
}

void write_dictionary(std::string& out,
                      const std::vector<const std::string*>& dict) {
  put_varint(out, dict.size());
  for (const std::string* s : dict) {
    put_varint(out, s->size());
    out.append(*s);
  }
}

std::vector<std::string> read_dictionary(ByteReader& r) {
  const std::uint64_t size = r.varint();
  std::vector<std::string> dict;
  dict.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    const std::uint64_t len = r.varint();
    dict.emplace_back(r.bytes(len), len);
  }
  return dict;
}

void encode_factor_column(std::string& out, const RawRecord* records,
                          std::size_t n, std::size_t col) {
  bool any_int = false, any_real = false, any_string = false;
  for (std::size_t i = 0; i < n; ++i) {
    switch (records[i].factors[col].kind()) {
      case ValueKind::kInt: any_int = true; break;
      case ValueKind::kReal: any_real = true; break;
      case ValueKind::kString: any_string = true; break;
    }
  }

  // Dictionary of the block's distinct strings, first-appearance order.
  std::vector<const std::string*> dict;
  std::unordered_map<std::string, std::uint64_t> dict_index;
  if (any_string) {
    for (std::size_t i = 0; i < n; ++i) {
      const Value& v = records[i].factors[col];
      if (!v.is_string()) continue;
      if (dict_index.emplace(v.as_string(), dict.size()).second) {
        dict.push_back(&v.as_string());
      }
    }
  }

  if (any_int && !any_real && !any_string) {
    put_u8(out, kColInt);
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t v = records[i].factors[col].as_int();
      put_svarint(out, v - prev);
      prev = v;
    }
  } else if (any_real && !any_int && !any_string) {
    put_u8(out, kColReal);
    for (std::size_t i = 0; i < n; ++i) {
      put_f64le(out, records[i].factors[col].as_real());
    }
  } else if (any_string && !any_int && !any_real) {
    put_u8(out, kColString);
    write_dictionary(out, dict);
    for (std::size_t i = 0; i < n; ++i) {
      put_varint(out, dict_index.at(records[i].factors[col].as_string()));
    }
  } else {
    put_u8(out, kColMixed);
    write_dictionary(out, dict);
    for (std::size_t i = 0; i < n; ++i) {
      const Value& v = records[i].factors[col];
      switch (v.kind()) {
        case ValueKind::kInt:
          put_u8(out, 0);
          put_svarint(out, v.as_int());
          break;
        case ValueKind::kReal:
          put_u8(out, 1);
          put_f64le(out, v.as_real());
          break;
        case ValueKind::kString:
          put_u8(out, 2);
          put_varint(out, dict_index.at(v.as_string()));
          break;
      }
    }
  }
}

std::vector<Value> decode_factor_payload(ByteReader& r, std::size_t n) {
  std::vector<Value> out;
  out.reserve(n);
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case kColInt: {
      std::vector<std::uint64_t> scratch(n);
      decode_delta_payload(r, n, scratch.data());
      for (std::size_t i = 0; i < n; ++i) {
        out.emplace_back(static_cast<std::int64_t>(scratch[i]));
      }
      break;
    }
    case kColReal: {
      std::vector<double> scratch(n);
      const char* src = r.bytes(n * sizeof(double));
      simd::kernels().f64le_decode(src, n, scratch.data());
      for (std::size_t i = 0; i < n; ++i) out.emplace_back(scratch[i]);
      break;
    }
    case kColString: {
      const std::vector<std::string> dict = read_dictionary(r);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t idx = r.varint();
        if (idx >= dict.size()) {
          throw std::runtime_error("bbx: dictionary index out of range");
        }
        out.emplace_back(dict[idx]);
      }
      break;
    }
    case kColMixed: {
      const std::vector<std::string> dict = read_dictionary(r);
      for (std::size_t i = 0; i < n; ++i) {
        switch (r.u8()) {
          case 0: out.emplace_back(r.svarint()); break;
          case 1: out.emplace_back(r.f64le()); break;
          case 2: {
            const std::uint64_t idx = r.varint();
            if (idx >= dict.size()) {
              throw std::runtime_error("bbx: dictionary index out of range");
            }
            out.emplace_back(dict[idx]);
            break;
          }
          default:
            throw std::runtime_error("bbx: unknown mixed-value kind tag");
        }
      }
      break;
    }
    default:
      throw std::runtime_error("bbx: unknown factor column encoding " +
                               std::to_string(tag));
  }
  return out;
}

/// value_compare's numeric branch, unboxed: IEEE compare, NaN on either
/// side satisfies only kNe.
bool real_cmp(double a, MaskOp op, double b) {
  switch (op) {
    case MaskOp::kEq: return a == b;
    case MaskOp::kNe: return a != b;
    case MaskOp::kLt: return a < b;
    case MaskOp::kLe: return a <= b;
    case MaskOp::kGt: return a > b;
    case MaskOp::kGe: return a >= b;
  }
  return false;
}

/// value_compare's string branch: lexicographic.
bool string_cmp(const std::string& a, MaskOp op, const std::string& b) {
  const int c = a.compare(b);
  switch (op) {
    case MaskOp::kEq: return c == 0;
    case MaskOp::kNe: return c != 0;
    case MaskOp::kLt: return c < 0;
    case MaskOp::kLe: return c <= 0;
    case MaskOp::kGt: return c > 0;
    case MaskOp::kGe: return c >= 0;
  }
  return false;
}

simd::Cmp to_simd(MaskOp op) {
  return static_cast<simd::Cmp>(static_cast<int>(op));
}

}  // namespace

// --- BlockView --------------------------------------------------------------

BlockView::BlockView(const std::string& raw, std::size_t n_factors,
                     std::size_t n_metrics)
    : raw_(&raw), n_factors_(n_factors), n_metrics_(n_metrics) {
  ByteReader r(raw);
  records_ = r.varint();
  const std::size_t image_factors = r.varint();
  const std::size_t image_metrics = r.varint();
  if (image_factors != n_factors || image_metrics != n_metrics) {
    throw std::runtime_error("bbx: block schema does not match manifest");
  }
  const std::size_t columns = 4 + n_factors + n_metrics;
  column_bytes_.reserve(columns);
  for (std::size_t c = 0; c < columns; ++c) {
    column_bytes_.push_back(r.varint());
  }
  payload_start_ = r.position();
  std::size_t total = payload_start_;
  for (const std::size_t bytes : column_bytes_) total += bytes;
  if (total != raw.size()) {
    throw std::runtime_error("bbx: block column sizes disagree with image");
  }
}

ByteReader BlockView::column(std::size_t id) const {
  if (id >= column_bytes_.size()) {
    throw std::out_of_range("bbx: column id out of range");
  }
  std::size_t start = payload_start_;
  for (std::size_t c = 0; c < id; ++c) start += column_bytes_[c];
  return ByteReader(raw_->data() + start, column_bytes_[id]);
}

FactorTag BlockView::factor_tag(std::size_t f) const {
  if (f >= n_factors_) {
    throw std::out_of_range("bbx: factor index out of range");
  }
  ByteReader r = column(4 + f);
  const std::uint8_t tag = r.u8();
  if (tag > static_cast<std::uint8_t>(FactorTag::kMixed)) {
    throw std::runtime_error("bbx: unknown factor column encoding " +
                             std::to_string(tag));
  }
  return static_cast<FactorTag>(tag);
}

std::vector<std::size_t> BlockView::index_column(std::size_t which) const {
  if (which > 2) {
    throw std::out_of_range("bbx: bookkeeping index column out of range");
  }
  ByteReader r = column(which);
  return decode_delta_column(r, records_);
}

std::vector<double> BlockView::timestamp_column() const {
  ByteReader r = column(3);
  return decode_f64_column(r, records_);
}

std::vector<Value> BlockView::factor_column(std::size_t f) const {
  if (f >= n_factors_) {
    throw std::out_of_range("bbx: factor index out of range");
  }
  ByteReader r = column(4 + f);
  return decode_factor_payload(r, records_);
}

std::vector<double> BlockView::metric_column(std::size_t m) const {
  if (m >= n_metrics_) {
    throw std::out_of_range("bbx: metric index out of range");
  }
  ByteReader r = column(4 + n_factors_ + m);
  return decode_f64_column(r, records_);
}

void BlockView::eval_int_payload(ByteReader r, MaskOp op,
                                 const Value& literal,
                                 std::vector<char>& mask) const {
  // "Running-prefix bounds": the delta varints stream through the
  // dispatched decoder into unboxed prefix values -- no Value is ever
  // constructed -- and the compare runs as one vector pass.
  std::vector<std::uint64_t> scratch(records_);
  decode_delta_payload(r, records_, scratch.data());
  if (literal.is_int()) {
    simd::kernels().cmp_mask_i64(
        reinterpret_cast<const std::int64_t*>(scratch.data()), records_,
        to_simd(op), literal.as_int(), mask.data(), false);
    return;
  }
  // Int column against a real literal: value_compare widens both sides
  // to double, so do exactly that (never truncate the literal).
  const double lit = literal.as_real();
  for (std::size_t i = 0; i < records_; ++i) {
    const double v =
        static_cast<double>(static_cast<std::int64_t>(scratch[i]));
    mask[i] = real_cmp(v, op, lit);
  }
}

void BlockView::eval_real_payload(ByteReader r, MaskOp op,
                                  const Value& literal,
                                  std::vector<char>& mask) const {
  const char* src = r.bytes(records_ * sizeof(double));
  simd::kernels().cmp_mask_f64(src, records_, to_simd(op),
                               literal.as_real(), mask.data(), false);
}

void BlockView::eval_string_payload(ByteReader r, MaskOp op,
                                    const Value& literal,
                                    std::vector<char>& mask) const {
  // Dictionary truth table: compare the literal against each distinct
  // level once, then map the per-record codes -- the strings themselves
  // are never materialized.
  const std::vector<std::string> dict = read_dictionary(r);
  std::vector<char> truth(dict.size());
  for (std::size_t k = 0; k < dict.size(); ++k) {
    truth[k] = string_cmp(dict[k], op, literal.as_string());
  }
  for (std::size_t i = 0; i < records_; ++i) {
    const std::uint64_t idx = r.varint();
    if (idx >= dict.size()) {
      throw std::runtime_error("bbx: dictionary index out of range");
    }
    mask[i] = truth[idx];
  }
}

bool BlockView::eval_column_mask(std::size_t column_id, MaskOp op,
                                 const Value& literal,
                                 std::vector<char>& mask) const {
  mask.resize(records_);
  const auto fill_kind_mismatch = [&] {
    // value_compare across kinds: only != holds.
    std::fill(mask.begin(), mask.end(),
              static_cast<char>(op == MaskOp::kNe));
  };
  if (column_id < 3) {
    if (literal.is_string()) {
      fill_kind_mismatch();
      return true;
    }
    eval_int_payload(column(column_id), op, literal, mask);
    return true;
  }
  if (column_id == 3 || column_id >= 4 + n_factors_) {
    if (column_id != 3 && column_id - 4 - n_factors_ >= n_metrics_) {
      throw std::out_of_range("bbx: column id out of range");
    }
    if (literal.is_string()) {
      fill_kind_mismatch();
      return true;
    }
    eval_real_payload(column(column_id), op, literal, mask);
    return true;
  }
  const std::size_t f = column_id - 4;
  ByteReader r = column(4 + f);
  const auto tag = static_cast<FactorTag>(r.u8());
  switch (tag) {
    case FactorTag::kInt:
      if (literal.is_string()) {
        fill_kind_mismatch();
        return true;
      }
      eval_int_payload(r, op, literal, mask);
      return true;
    case FactorTag::kReal:
      if (literal.is_string()) {
        fill_kind_mismatch();
        return true;
      }
      eval_real_payload(r, op, literal, mask);
      return true;
    case FactorTag::kString:
      if (!literal.is_string()) {
        fill_kind_mismatch();
        return true;
      }
      eval_string_payload(r, op, literal, mask);
      return true;
    case FactorTag::kMixed:
      // Per-value kind tags: the decoded path handles these.
      return false;
  }
  throw std::runtime_error("bbx: unknown factor column encoding " +
                           std::to_string(static_cast<unsigned>(tag)));
}

// --- whole-block and free-function projections ------------------------------

std::string encode_block(const RawRecord* records, std::size_t n,
                         std::size_t n_factors, std::size_t n_metrics) {
  const std::size_t columns = 4 + n_factors + n_metrics;
  std::vector<std::string> payloads(columns);

  encode_delta_column(payloads[0], records, n, &RawRecord::sequence);
  encode_delta_column(payloads[1], records, n, &RawRecord::cell_index);
  encode_delta_column(payloads[2], records, n, &RawRecord::replicate);
  for (std::size_t i = 0; i < n; ++i) {
    put_f64le(payloads[3], records[i].timestamp_s);
  }
  for (std::size_t f = 0; f < n_factors; ++f) {
    encode_factor_column(payloads[4 + f], records, n, f);
  }
  for (std::size_t m = 0; m < n_metrics; ++m) {
    std::string& col = payloads[4 + n_factors + m];
    for (std::size_t i = 0; i < n; ++i) {
      put_f64le(col, records[i].metrics[m]);
    }
  }

  std::string out;
  std::size_t payload_bytes = 0;
  for (const std::string& p : payloads) payload_bytes += p.size();
  out.reserve(payload_bytes + 4 * columns + 16);
  put_varint(out, n);
  put_varint(out, n_factors);
  put_varint(out, n_metrics);
  for (const std::string& p : payloads) put_varint(out, p.size());
  for (const std::string& p : payloads) out.append(p);
  return out;
}

std::vector<RawRecord> decode_block(const std::string& raw,
                                    std::size_t n_factors,
                                    std::size_t n_metrics) {
  const BlockView view(raw, n_factors, n_metrics);
  const std::size_t n = view.records();

  const std::vector<std::size_t> sequence = view.index_column(0);
  const std::vector<std::size_t> cell = view.index_column(1);
  const std::vector<std::size_t> replicate = view.index_column(2);
  const std::vector<double> timestamps = view.timestamp_column();

  std::vector<RawRecord> records(n);
  for (std::size_t i = 0; i < n; ++i) {
    records[i].sequence = sequence[i];
    records[i].cell_index = cell[i];
    records[i].replicate = replicate[i];
    records[i].timestamp_s = timestamps[i];
    records[i].factors.reserve(n_factors);
    records[i].metrics.resize(n_metrics);
  }
  for (std::size_t f = 0; f < n_factors; ++f) {
    std::vector<Value> column = view.factor_column(f);
    for (std::size_t i = 0; i < n; ++i) {
      records[i].factors.push_back(std::move(column[i]));
    }
  }
  for (std::size_t m = 0; m < n_metrics; ++m) {
    const std::vector<double> column = view.metric_column(m);
    for (std::size_t i = 0; i < n; ++i) {
      records[i].metrics[m] = column[i];
    }
  }
  return records;
}

std::vector<std::size_t> decode_index_column(const std::string& raw,
                                             std::size_t n_factors,
                                             std::size_t n_metrics,
                                             std::size_t which) {
  return BlockView(raw, n_factors, n_metrics).index_column(which);
}

std::vector<double> decode_timestamp_column(const std::string& raw,
                                            std::size_t n_factors,
                                            std::size_t n_metrics) {
  return BlockView(raw, n_factors, n_metrics).timestamp_column();
}

std::vector<Value> decode_factor_column(const std::string& raw,
                                        std::size_t n_factors,
                                        std::size_t n_metrics,
                                        std::size_t factor_index) {
  return BlockView(raw, n_factors, n_metrics).factor_column(factor_index);
}

std::vector<double> decode_metric_column(const std::string& raw,
                                         std::size_t n_factors,
                                         std::size_t n_metrics,
                                         std::size_t metric_index) {
  return BlockView(raw, n_factors, n_metrics).metric_column(metric_index);
}

}  // namespace cal::io::archive
