#pragma once
// bbx_merge: deterministic concatenation of partial bundles.
//
// A distributed campaign executes each PlanPartition as an independent
// job streaming into its own *partial bundle* (a complete, finalized
// bbx bundle covering one contiguous block range of the plan).  Merging
// is manifest-level surgery: every shard of the output is the magic
// header followed by the corresponding shard tails of the partials in
// plan order, and the block index is the concatenation of the partials'
// indices with offsets rebased.  No block is re-encoded, re-compressed,
// or even decoded -- which is what makes the merged bundle byte-
// identical (shard bytes and block index alike) to a single-process run
// of the same plan, seed, and archive options under Clock::kIndexed.
//
// Safety: every partial is validated before a byte is written -- schema
// and layout must agree across partials, blocks must be plan-ordered
// and (unless MergeOptions::allow_gaps) contiguous, each block's shard
// must match the global round-robin assignment, and each shard file's
// size must equal exactly what its frames account for (a truncated
// partial fails with a pointer to bbx_fsck rather than producing a
// bundle that indexes past EOF).  The output is staged `*.tmp` and
// renamed manifest-last, like every bbx writer.

#include <cstdint>
#include <string>
#include <vector>

namespace cal::io::archive {

struct MergeOptions {
  /// Accept missing plan ranges between partials (a degraded campaign:
  /// some partitions never completed).  The merged bundle indexes only
  /// the blocks that exist; each hole is reported as a MergeGap.  When
  /// false (default), any discontinuity throws.
  bool allow_gaps = false;
};

/// One missing plan range discovered between consecutive partials.
struct MergeGap {
  std::uint64_t first_sequence = 0;  ///< first missing run index
  std::uint64_t record_count = 0;    ///< missing run count
};

struct MergeReport {
  std::size_t parts = 0;          ///< partial bundles merged
  std::size_t blocks = 0;         ///< blocks in the merged index
  std::uint64_t records = 0;      ///< records in the merged bundle
  std::vector<MergeGap> gaps;     ///< holes accepted via allow_gaps
};

/// Merges the partial bundles at `part_dirs` (any order; they are
/// sorted by plan position) into a complete bundle at `out_dir`.
/// Throws std::runtime_error on schema mismatch, truncation, layout
/// violations, or -- without MergeOptions::allow_gaps -- missing plan
/// ranges; nothing is published on failure.
MergeReport bbx_merge(const std::vector<std::string>& part_dirs,
                      const std::string& out_dir, MergeOptions options = {});

}  // namespace cal::io::archive
