#pragma once
// BbxWriter: a RecordSink that archives a campaign as a bbx bundle.
//
// The writer buffers the engine's plan-ordered batches into fixed-size
// blocks (Options::block_records), pivots each full block into columns
// (column_codec), compresses it (block_codec), checksums the stored
// payload (crc32), and appends the framed block to one of
// Options::shards shard files, round-robin by block index.  Because the
// engine delivers identical plan-ordered batches at any thread count,
// block boundaries -- and therefore every shard's bytes -- are
// deterministic regardless of how many workers measured.
//
// Atomicity: with Options::atomic (the default) every bundle file is
// written under a `*.tmp` staging name and renamed into place only on a
// successful close(), manifest last -- a crashed campaign leaves only
// `.tmp` debris that BbxReader and Campaign::read_dir refuse to treat
// as a bundle.  A close() that happens during exception unwinding (the
// engine finalizing a failed campaign) flushes but deliberately skips
// the renames, so a truncated archive is never published as complete.
//
// The writer runs entirely on the engine's merge thread (the RecordSink
// contract), so it needs no locking; parallelism lives on the read side.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/record_sink.hpp"
#include "io/archive/manifest.hpp"

namespace cal::io::archive {

/// First bytes of every shard file.
inline constexpr char kShardMagic[8] = {'b', 'b', 'x', 's',
                                        'h', 'd', '0', '1'};

/// Zone-map statistics of one block's records (what the writer stores
/// in Manifest::zones).  Empty input yields all-kNone columns -- a zone
/// that prunes nothing -- rather than reading a front() that is not
/// there; exposed so the degenerate cases stay testable.
BlockStats compute_block_stats(const std::vector<RawRecord>& records,
                               std::size_t n_factors, std::size_t n_metrics);

struct BbxWriterOptions {
  std::size_t shards = 1;          ///< shard files (>= 1)
  std::size_t block_records = 4096;  ///< records per block (>= 1)
  bool atomic = true;              ///< stage *.tmp, rename on close()
  /// Global index of this writer's first block.  A partial bundle
  /// (one plan partition of a distributed campaign) sets this to
  /// first_run / block_records so its blocks land on the same shards --
  /// round-robin by *global* block index -- as the corresponding blocks
  /// of a single-process run, which is what lets bbx_merge concatenate
  /// shard tails byte-identically.  0 for a whole-campaign writer.
  std::size_t first_block = 0;
};

class BbxWriter final : public RecordSink {
 public:
  using Options = BbxWriterOptions;

  /// Archives into `dir` (created if missing).  Shard files are created
  /// on begin(); construction only validates the options.
  explicit BbxWriter(std::string dir, Options options = {});
  ~BbxWriter() override;

  BbxWriter(const BbxWriter&) = delete;
  BbxWriter& operator=(const BbxWriter&) = delete;

  void begin(const std::vector<std::string>& factor_names,
             const std::vector<std::string>& metric_names,
             std::size_t expected_records) override;
  void consume(std::vector<RawRecord> batch) override;

  /// Flushes the partial tail block, writes the manifest, fsync-closes
  /// the shard streams, and (when atomic) renames everything into place,
  /// manifest last.  Idempotent; throws on any write failure.
  void close() override;

  /// Adds a campaign-metadata entry to the manifest (call before
  /// close()).  Keys repeat in insertion order like Metadata entries.
  void add_manifest_extra(const std::string& key, const std::string& value);

  std::size_t records_written() const noexcept { return records_; }
  const std::string& dir() const noexcept { return dir_; }

 private:
  void flush_block();
  std::string staged_name(const std::string& final_name) const;

  std::string dir_;
  Options options_;
  Manifest manifest_;
  std::vector<std::ofstream> shards_;
  std::vector<std::uint64_t> shard_offsets_;
  std::vector<RawRecord> pending_;  ///< current block, < block_records
  std::string scratch_raw_;         ///< reused block image buffer
  std::size_t records_ = 0;
  bool begun_ = false;
  bool closed_ = false;
};

}  // namespace cal::io::archive
