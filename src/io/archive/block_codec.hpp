#pragma once
// Dependency-free LZ-style block codec for bbx archive blocks.
//
// The container must not depend on zlib/lz4 being present, so it ships
// its own byte-oriented LZ77 variant (the LZ4 sequence layout: a token
// with literal/match length nibbles, 255-continuation length extensions,
// and 16-bit match offsets against a greedy hash-table matcher).  The
// encoded columns it compresses are already entropy-reduced -- delta
// varints and dictionary indices -- so a fast match-based codec captures
// most of what a general-purpose compressor would, and an incompressible
// block (e.g. pure noise doubles) falls back to stored form, bounding
// expansion at one codec byte.
//
// Framing: the first payload byte selects the codec (kStored | kLz); the
// decompressor verifies the declared raw size and bounds-checks every
// copy, so corrupt payloads throw instead of scribbling.

#include <cstddef>
#include <string>

namespace cal::io::archive {

enum : unsigned char { kCodecStored = 0, kCodecLz = 1 };

/// Compresses `raw` into a self-describing payload (codec byte +
/// stream).  Falls back to stored form whenever the LZ stream would not
/// be strictly smaller than the input.
std::string block_compress(const std::string& raw);

/// Inverse of block_compress.  `expected_raw_size` comes from the block
/// frame; a payload that is malformed or decodes to a different size
/// throws std::runtime_error.
std::string block_decompress(const char* payload, std::size_t payload_size,
                             std::size_t expected_raw_size);

}  // namespace cal::io::archive
