#include "io/archive/bbx_fsck.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/archive/bbx_writer.hpp"
#include "io/archive/block_codec.hpp"
#include "io/archive/crc32.hpp"
#include "io/archive/manifest.hpp"
#include "io/archive/wire.hpp"

namespace cal::io::archive {

namespace {

/// Loads the bundle's index: the published manifest when there is one,
/// else the staged `*.tmp` one a crashed finalize left behind (it is
/// fully written before any rename, so it indexes every flushed block).
Manifest load_any_manifest(const std::string& dir, bool& staged) {
  const std::string final_path =
      dir + "/" + std::string(Manifest::file_name());
  const std::string staged_path = final_path + ".tmp";
  if (std::ifstream in(final_path, std::ios::binary); in) {
    staged = false;
    return Manifest::parse(in);
  }
  if (std::ifstream in(staged_path, std::ios::binary); in) {
    staged = true;
    return Manifest::parse(in);
  }
  throw std::runtime_error(
      "bbx_fsck: '" + dir +
      "' has no manifest, published or staged -- nothing to verify the "
      "shards against");
}

/// Reads shard `s` (published name, else staged) fully into memory.
/// nullopt when neither file exists.
std::optional<std::string> load_shard(const std::string& dir, std::size_t s) {
  const std::string final_path = dir + "/" + Manifest::shard_file_name(s);
  for (const std::string& path : {final_path, final_path + ".tmp"}) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }
  return std::nullopt;
}

/// Verifies one indexed block against its shard bytes.  Empty string =
/// valid; otherwise a one-line description of what is wrong.
std::string verify_block(const std::vector<std::optional<std::string>>& shards,
                         const BlockInfo& b, std::size_t index) {
  const std::string tag = "block " + std::to_string(index) + " (shard " +
                          std::to_string(b.shard) + ", offset " +
                          std::to_string(b.offset) + "): ";
  if (b.shard >= shards.size() || !shards[b.shard].has_value()) {
    return tag + "shard file missing";
  }
  const std::string& data = *shards[b.shard];
  if (data.size() < sizeof kShardMagic ||
      std::memcmp(data.data(), kShardMagic, sizeof kShardMagic) != 0) {
    return tag + "shard has no bbx magic";
  }
  if (b.offset + 12 > data.size() ||
      b.offset + 12 + b.stored_bytes > data.size()) {
    return tag + "frame runs past end of shard (truncated at " +
           std::to_string(data.size()) + " bytes)";
  }
  ByteReader header(data.data() + b.offset, 12);
  const std::uint32_t stored = header.u32le();
  const std::uint32_t raw = header.u32le();
  const std::uint32_t crc = header.u32le();
  if (stored != b.stored_bytes || raw != b.raw_bytes || crc != b.crc32) {
    return tag + "frame header disagrees with the manifest index";
  }
  const char* payload = data.data() + b.offset + 12;
  if (crc32(payload, stored) != crc) {
    return tag + "checksum mismatch (payload corrupted)";
  }
  try {
    block_decompress(payload, stored, raw);
  } catch (const std::exception& e) {
    return tag + "payload does not decompress: " + e.what();
  }
  return {};
}

}  // namespace

FsckReport bbx_fsck(const std::string& dir) {
  FsckReport report;
  Manifest m = load_any_manifest(dir, report.manifest_staged);
  report.shard_count = m.shard_count;
  report.blocks_indexed = m.blocks.size();

  std::vector<std::optional<std::string>> shards;
  shards.reserve(m.shard_count);
  for (std::size_t s = 0; s < m.shard_count; ++s) {
    shards.push_back(load_shard(dir, s));
  }

  bool prefix_intact = true;
  std::uint64_t records = 0;
  for (std::size_t i = 0; i < m.blocks.size(); ++i) {
    const std::string problem = verify_block(shards, m.blocks[i], i);
    if (!problem.empty()) {
      report.problems.push_back(problem);
      prefix_intact = false;
      continue;
    }
    ++report.blocks_valid;
    records += m.blocks[i].records;
    if (prefix_intact) {
      ++report.prefix_blocks;
      report.prefix_records += m.blocks[i].records;
    }
  }
  if (report.blocks_valid == m.blocks.size() && records != m.total_records) {
    report.problems.push_back(
        "manifest total_records " + std::to_string(m.total_records) +
        " does not match the " + std::to_string(records) +
        " records its blocks index");
  }
  report.ok = report.problems.empty();
  return report;
}

FsckReport bbx_salvage(const std::string& dir, const std::string& out_dir) {
  if (std::filesystem::weakly_canonical(dir) ==
      std::filesystem::weakly_canonical(out_dir)) {
    throw std::invalid_argument(
        "bbx_salvage: out_dir must differ from the damaged bundle");
  }
  const FsckReport report = bbx_fsck(dir);
  if (report.prefix_blocks == 0 && report.blocks_indexed > 0) {
    throw std::runtime_error(
        "bbx_salvage: '" + dir +
        "' has no valid block prefix -- nothing recoverable");
  }

  bool staged = false;
  Manifest src = load_any_manifest(dir, staged);
  std::vector<std::optional<std::string>> shards;
  for (std::size_t s = 0; s < src.shard_count; ++s) {
    shards.push_back(load_shard(dir, s));
  }

  // Rebuild the prefix as a fresh bundle: same shard assignment, frames
  // copied verbatim, offsets recomputed for the compacted files.
  Manifest out;
  out.factor_names = src.factor_names;
  out.metric_names = src.metric_names;
  out.shard_count = src.shard_count;
  out.block_records = src.block_records;
  out.total_records = report.prefix_records;
  const bool zones_complete = src.zones.size() == src.blocks.size();

  std::filesystem::create_directories(out_dir);
  std::vector<std::ofstream> outs;
  std::vector<std::uint64_t> out_len(src.shard_count, 8);
  for (std::size_t s = 0; s < src.shard_count; ++s) {
    const std::string path =
        out_dir + "/" + Manifest::shard_file_name(s) + ".tmp";
    auto& o = outs.emplace_back(path, std::ios::binary | std::ios::trunc);
    if (!o) {
      throw std::runtime_error("bbx_salvage: cannot create '" + path + "'");
    }
    o.write(kShardMagic, sizeof kShardMagic);
  }
  for (std::size_t i = 0; i < report.prefix_blocks; ++i) {
    const BlockInfo& b = src.blocks[i];
    const std::string& data = *shards[b.shard];
    BlockInfo nb = b;
    nb.offset = out_len[b.shard];
    outs[b.shard].write(data.data() + b.offset,
                        static_cast<std::streamsize>(12 + b.stored_bytes));
    out_len[b.shard] += 12 + b.stored_bytes;
    out.blocks.push_back(nb);
    if (zones_complete) out.zones.push_back(src.zones[i]);
  }
  for (std::size_t s = 0; s < outs.size(); ++s) {
    outs[s].flush();
    if (!outs[s]) {
      throw std::runtime_error("bbx_salvage: write failed on shard " +
                               std::to_string(s));
    }
    outs[s].close();
  }

  out.extra = src.extra;
  out.extra.emplace_back(
      "salvaged_prefix", std::to_string(report.prefix_blocks) + "/" +
                             std::to_string(report.blocks_indexed) +
                             " blocks");

  const std::string staged_manifest =
      out_dir + "/" + std::string(Manifest::file_name()) + ".tmp";
  {
    std::ofstream o(staged_manifest, std::ios::binary | std::ios::trunc);
    if (!o) {
      throw std::runtime_error("bbx_salvage: cannot create '" +
                               staged_manifest + "'");
    }
    out.write(o);
    o.flush();
    if (!o) {
      throw std::runtime_error("bbx_salvage: manifest write failed");
    }
  }
  for (std::size_t s = 0; s < src.shard_count; ++s) {
    const std::string name = Manifest::shard_file_name(s);
    std::filesystem::rename(out_dir + "/" + name + ".tmp",
                            out_dir + "/" + name);
  }
  std::filesystem::rename(staged_manifest,
                          out_dir + "/" + std::string(Manifest::file_name()));
  return report;
}

}  // namespace cal::io::archive
