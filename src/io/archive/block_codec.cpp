#include "io/archive/block_codec.hpp"

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "simd/dispatch.hpp"

namespace cal::io::archive {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 15;

inline std::uint32_t hash4(const char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, 4);
  // Fibonacci hash of the 4-byte window, folded to kHashBits.
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline void put_length(std::string& out, std::size_t extra) {
  // 255-continuation length extension (LZ4 style): emitted only when the
  // nibble saturated at 15.
  while (extra >= 255) {
    out.push_back(static_cast<char>(0xff));
    extra -= 255;
  }
  out.push_back(static_cast<char>(extra));
}

void emit_sequence(std::string& out, const char* lit, std::size_t lit_len,
                   std::size_t match_len, std::size_t offset) {
  const std::size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  const bool has_match = match_len >= kMinMatch;
  const std::size_t match_extra = has_match ? match_len - kMinMatch : 0;
  const std::size_t match_nibble =
      has_match ? (match_extra < 15 ? match_extra : 15) : 0;
  out.push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) put_length(out, lit_len - 15);
  out.append(lit, lit_len);
  if (!has_match) return;  // final literals-only sequence
  out.push_back(static_cast<char>(offset & 0xff));
  out.push_back(static_cast<char>((offset >> 8) & 0xff));
  if (match_nibble == 15) put_length(out, match_extra - 15);
}

}  // namespace

std::string block_compress(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() / 2 + 16);
  out.push_back(static_cast<char>(kCodecLz));

  const char* data = raw.data();
  const std::size_t n = raw.size();
  std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, 0xFFFFFFFFu);

  std::size_t anchor = 0;  // first literal not yet emitted
  std::size_t i = 0;
  while (n >= kMinMatch && i + kMinMatch <= n) {
    const std::uint32_t h = hash4(data + i);
    const std::uint32_t candidate = table[h];
    table[h] = static_cast<std::uint32_t>(i);
    if (candidate != 0xFFFFFFFFu && i - candidate <= kMaxOffset &&
        std::memcmp(data + candidate, data + i, kMinMatch) == 0) {
      std::size_t len = kMinMatch;
      while (i + len < n && data[candidate + len] == data[i + len]) ++len;
      emit_sequence(out, data + anchor, i - anchor, len, i - candidate);
      i += len;
      anchor = i;
    } else {
      ++i;
    }
  }
  emit_sequence(out, data + anchor, n - anchor, 0, 0);

  if (out.size() >= raw.size() + 1) {
    out.assign(1, static_cast<char>(kCodecStored));
    out.append(raw);
  }
  return out;
}

namespace {

std::size_t read_length(const char* p, std::size_t size, std::size_t& pos,
                        std::size_t base) {
  for (;;) {
    if (pos >= size) throw std::runtime_error("bbx: LZ stream truncated");
    const auto byte = static_cast<std::uint8_t>(p[pos++]);
    base += byte;
    if (byte != 0xff) return base;
  }
}

}  // namespace

std::string block_decompress(const char* payload, std::size_t payload_size,
                             std::size_t expected_raw_size) {
  if (payload_size == 0) throw std::runtime_error("bbx: empty block payload");
  const auto codec = static_cast<std::uint8_t>(payload[0]);
  const char* p = payload + 1;
  const std::size_t size = payload_size - 1;

  if (codec == kCodecStored) {
    if (size != expected_raw_size) {
      throw std::runtime_error("bbx: stored block size mismatch");
    }
    return std::string(p, size);
  }
  if (codec != kCodecLz) {
    throw std::runtime_error("bbx: unknown block codec " +
                             std::to_string(codec));
  }

  // Pre-sized output: every write lands at a known position, so the
  // literal copies are straight memcpys and match copies go through the
  // dispatched lz_match_copy kernel (chunked, overlap-aware) instead of
  // a per-byte push_back.  Bounds are validated against the declared
  // size before any write, exactly as the byte-at-a-time loop did.
  std::string out(expected_raw_size, '\0');
  std::size_t written = 0;
  std::size_t pos = 0;
  const simd::Kernels& kernels = simd::kernels();
  while (pos < size) {
    const auto token = static_cast<std::uint8_t>(p[pos++]);
    std::size_t lit_len = token >> 4;
    if (lit_len == 15) lit_len = read_length(p, size, pos, lit_len);
    if (pos + lit_len > size) {
      throw std::runtime_error("bbx: LZ literals truncated");
    }
    if (written + lit_len > expected_raw_size) {
      throw std::runtime_error("bbx: LZ output exceeds declared size");
    }
    std::memcpy(out.data() + written, p + pos, lit_len);
    written += lit_len;
    pos += lit_len;
    if (pos == size) break;  // final literals-only sequence

    if (pos + 2 > size) throw std::runtime_error("bbx: LZ offset truncated");
    const std::size_t offset =
        static_cast<std::uint8_t>(p[pos]) |
        (static_cast<std::size_t>(static_cast<std::uint8_t>(p[pos + 1]))
         << 8);
    pos += 2;
    std::size_t match_len = (token & 0x0f);
    if (match_len == 15) match_len = read_length(p, size, pos, match_len);
    match_len += kMinMatch;
    if (offset == 0 || offset > written) {
      throw std::runtime_error("bbx: LZ match offset out of range");
    }
    if (written + match_len > expected_raw_size) {
      throw std::runtime_error("bbx: LZ output exceeds declared size");
    }
    kernels.lz_match_copy(out.data() + written, offset, match_len);
    written += match_len;
  }
  if (written != expected_raw_size) {
    throw std::runtime_error("bbx: block decoded to wrong size");
  }
  return out;
}

}  // namespace cal::io::archive
