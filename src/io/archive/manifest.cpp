#include "io/archive/manifest.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cal::io::archive {

namespace {

// --- JSON writing -----------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_string_array(std::ostream& out,
                        const std::vector<std::string>& items) {
  out << "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out << ", ";
    out << '"' << json_escape(items[i]) << '"';
  }
  out << "]";
}

/// Round-trip numeric form: integers print without a point, everything
/// else with enough digits that std::stod reproduces the double exactly.
std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void write_zone_entry(std::ostream& out, const ColumnStats& stats) {
  switch (stats.kind) {
    case ColumnStats::Kind::kNone:
      out << "null";
      break;
    case ColumnStats::Kind::kNumeric:
      out << "[" << json_number(stats.min) << ", " << json_number(stats.max)
          << "]";
      break;
    case ColumnStats::Kind::kStrings:
      out << "{\"levels\": ";
      write_string_array(out, stats.levels);
      out << "}";
      break;
  }
}

// --- JSON parsing (the writer's subset) -------------------------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  enum class Kind { kNull, kUInt, kInt, kReal, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  std::uint64_t uint_v = 0;
  std::int64_t int_v = 0;
  double real_v = 0.0;
  std::string string_v;
  std::shared_ptr<JsonArray> array_v;
  std::shared_ptr<JsonObject> object_v;

  std::uint64_t as_uint(const std::string& what) const {
    if (kind == Kind::kUInt) return uint_v;
    if (kind == Kind::kInt && int_v >= 0) {
      return static_cast<std::uint64_t>(int_v);
    }
    throw std::runtime_error("bbx manifest: '" + what +
                             "' is not a non-negative integer");
  }
  double as_real(const std::string& what) const {
    if (kind == Kind::kReal) return real_v;
    if (kind == Kind::kUInt) return static_cast<double>(uint_v);
    if (kind == Kind::kInt) return static_cast<double>(int_v);
    throw std::runtime_error("bbx manifest: '" + what + "' is not a number");
  }
  const std::string& as_string(const std::string& what) const {
    if (kind != Kind::kString) {
      throw std::runtime_error("bbx manifest: '" + what + "' is not a string");
    }
    return string_v;
  }
  const JsonArray& as_array(const std::string& what) const {
    if (kind != Kind::kArray) {
      throw std::runtime_error("bbx manifest: '" + what + "' is not an array");
    }
    return *array_v;
  }
  const JsonObject& as_object(const std::string& what) const {
    if (kind != Kind::kObject) {
      throw std::runtime_error("bbx manifest: '" + what +
                               "' is not an object");
    }
    return *object_v;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("bbx manifest: malformed JSON (" + what +
                             " at byte " + std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return parse_number();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    fail("unexpected token");
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    v.object_v = std::make_shared<JsonObject>();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      JsonValue key = parse_string();
      expect(':');
      v.object_v->emplace_back(std::move(key.string_v), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return v;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    v.array_v = std::make_shared<JsonArray>();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_v->push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return v;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string_v += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string_v += '"'; break;
        case '\\': v.string_v += '\\'; break;
        case '/': v.string_v += '/'; break;
        case 'n': v.string_v += '\n'; break;
        case 'r': v.string_v += '\r'; break;
        case 't': v.string_v += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          const unsigned code =
              static_cast<unsigned>(std::stoul(text_.substr(pos_, 4), nullptr, 16));
          pos_ += 4;
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          v.string_v += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    bool is_real = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_real = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string tok = text_.substr(start, pos_ - start);
    JsonValue v;
    try {
      if (is_real) {
        v.kind = JsonValue::Kind::kReal;
        v.real_v = std::stod(tok);
      } else if (!tok.empty() && tok[0] == '-') {
        v.kind = JsonValue::Kind::kInt;
        v.int_v = std::stoll(tok);
      } else {
        v.kind = JsonValue::Kind::kUInt;
        v.uint_v = std::stoull(tok);
      }
    } catch (const std::exception&) {
      fail("unparseable number '" + tok + "'");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue* find(const JsonObject& obj, const std::string& key) {
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& require(const JsonObject& obj, const std::string& key) {
  const JsonValue* v = find(obj, key);
  if (!v) throw std::runtime_error("bbx manifest: missing key '" + key + "'");
  return *v;
}

std::vector<std::string> string_array(const JsonValue& v,
                                      const std::string& what) {
  std::vector<std::string> out;
  for (const auto& item : v.as_array(what)) out.push_back(item.as_string(what));
  return out;
}

}  // namespace

std::string Manifest::shard_file_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard-%03zu.bbx", index);
  return buf;
}

void Manifest::write(std::ostream& out) const {
  out << "{\n";
  out << "  \"format\": \"bbx\",\n";
  out << "  \"version\": " << version << ",\n";
  out << "  \"factors\": ";
  write_string_array(out, factor_names);
  out << ",\n  \"metrics\": ";
  write_string_array(out, metric_names);
  out << ",\n  \"shard_count\": " << shard_count;
  out << ",\n  \"block_records\": " << block_records;
  out << ",\n  \"total_records\": " << total_records;
  out << ",\n  \"blocks\": [";
  // Block index rows: [shard, offset, stored, raw, crc, first_seq, records]
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const BlockInfo& b = blocks[i];
    out << (i ? ",\n    [" : "\n    [") << b.shard << ", " << b.offset << ", "
        << b.stored_bytes << ", " << b.raw_bytes << ", " << b.crc32 << ", "
        << b.first_sequence << ", " << b.records << "]";
  }
  out << (blocks.empty() ? "]" : "\n  ]");
  if (!zones.empty()) {
    // Zone maps: one row per block, one entry per column ([min, max],
    // {"levels": [...]}, or null), in block-image column order.
    out << ",\n  \"zones\": [";
    for (std::size_t i = 0; i < zones.size(); ++i) {
      out << (i ? ",\n    [" : "\n    [");
      for (std::size_t c = 0; c < zones[i].columns.size(); ++c) {
        if (c) out << ", ";
        write_zone_entry(out, zones[i].columns[c]);
      }
      out << "]";
    }
    out << "\n  ]";
  }
  out << ",\n  \"extra\": {";
  for (std::size_t i = 0; i < extra.size(); ++i) {
    out << (i ? ",\n    \"" : "\n    \"") << json_escape(extra[i].first)
        << "\": \"" << json_escape(extra[i].second) << '"';
  }
  out << (extra.empty() ? "}" : "\n  }");
  out << "\n}\n";
}

Manifest Manifest::parse(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const JsonValue doc = JsonParser(text).parse_document();
  const JsonObject& obj = doc.as_object("document");

  if (require(obj, "format").as_string("format") != "bbx") {
    throw std::runtime_error("bbx manifest: not a bbx manifest");
  }
  Manifest m;
  m.version = static_cast<std::uint32_t>(require(obj, "version").as_uint("version"));
  // Version 1 (PR-4 bundles) lacks zone maps but is otherwise identical;
  // anything newer than this build's writer is refused outright.
  if (m.version < 1 || m.version > kManifestVersion) {
    throw std::runtime_error("bbx manifest: unsupported version " +
                             std::to_string(m.version));
  }
  m.factor_names = string_array(require(obj, "factors"), "factors");
  m.metric_names = string_array(require(obj, "metrics"), "metrics");
  m.shard_count =
      static_cast<std::size_t>(require(obj, "shard_count").as_uint("shard_count"));
  m.block_records = static_cast<std::size_t>(
      require(obj, "block_records").as_uint("block_records"));
  m.total_records = require(obj, "total_records").as_uint("total_records");
  for (const auto& row : require(obj, "blocks").as_array("blocks")) {
    const JsonArray& cells = row.as_array("block row");
    if (cells.size() != 7) {
      throw std::runtime_error("bbx manifest: block row is not 7 numbers");
    }
    BlockInfo b;
    b.shard = static_cast<std::uint32_t>(cells[0].as_uint("block shard"));
    b.offset = cells[1].as_uint("block offset");
    b.stored_bytes = static_cast<std::uint32_t>(cells[2].as_uint("block stored"));
    b.raw_bytes = static_cast<std::uint32_t>(cells[3].as_uint("block raw"));
    b.crc32 = static_cast<std::uint32_t>(cells[4].as_uint("block crc"));
    b.first_sequence = cells[5].as_uint("block first_sequence");
    b.records = static_cast<std::uint32_t>(cells[6].as_uint("block records"));
    m.blocks.push_back(b);
  }
  if (const JsonValue* zones = find(obj, "zones")) {
    const JsonArray& rows = zones->as_array("zones");
    if (rows.size() != m.blocks.size()) {
      throw std::runtime_error(
          "bbx manifest: " + std::to_string(rows.size()) +
          " zone rows for " + std::to_string(m.blocks.size()) + " blocks");
    }
    const std::size_t columns = m.column_count();
    for (const auto& row : rows) {
      const JsonArray& cells = row.as_array("zone row");
      if (cells.size() != columns) {
        throw std::runtime_error("bbx manifest: zone row width " +
                                 std::to_string(cells.size()) +
                                 " does not match the schema's " +
                                 std::to_string(columns) + " columns");
      }
      BlockStats stats;
      stats.columns.reserve(columns);
      for (const auto& cell : cells) {
        ColumnStats col;
        if (cell.kind == JsonValue::Kind::kNull) {
          // kNone: no stats for this column in this block.
        } else if (cell.kind == JsonValue::Kind::kArray) {
          const JsonArray& pair = cell.as_array("zone entry");
          if (pair.size() != 2) {
            throw std::runtime_error(
                "bbx manifest: numeric zone entry is not [min, max]");
          }
          col.kind = ColumnStats::Kind::kNumeric;
          col.min = pair[0].as_real("zone min");
          col.max = pair[1].as_real("zone max");
        } else {
          col.kind = ColumnStats::Kind::kStrings;
          col.levels = string_array(require(cell.as_object("zone entry"),
                                            "levels"),
                                    "zone levels");
        }
        stats.columns.push_back(std::move(col));
      }
      m.zones.push_back(std::move(stats));
    }
  }
  if (const JsonValue* extra = find(obj, "extra")) {
    for (const auto& [k, v] : extra->as_object("extra")) {
      m.extra.emplace_back(k, v.as_string("extra value"));
    }
  }
  return m;
}

Manifest Manifest::load(const std::string& dir) {
  const std::string path = dir + "/" + file_name();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(
        "bbx: missing manifest '" + path +
        "' (not a bbx bundle, or the campaign never finished its close)");
  }
  return parse(in);
}

}  // namespace cal::io::archive
