#include "io/archive/bbx_writer.hpp"

#include <exception>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "io/archive/block_codec.hpp"
#include "io/archive/column_codec.hpp"
#include "io/archive/crc32.hpp"
#include "io/archive/wire.hpp"

namespace cal::io::archive {

BbxWriter::BbxWriter(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.shards == 0) {
    throw std::invalid_argument("BbxWriter: shards must be >= 1");
  }
  if (options_.block_records == 0) {
    throw std::invalid_argument("BbxWriter: block_records must be >= 1");
  }
}

BbxWriter::~BbxWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; close() explicitly to observe errors.
  }
}

std::string BbxWriter::staged_name(const std::string& final_name) const {
  return options_.atomic ? final_name + ".tmp" : final_name;
}

void BbxWriter::begin(const std::vector<std::string>& factor_names,
                      const std::vector<std::string>& metric_names,
                      std::size_t /*expected_records*/) {
  if (begun_) throw std::logic_error("BbxWriter: begin() called twice");
  if (closed_) throw std::logic_error("BbxWriter: begin() after close()");
  begun_ = true;
  manifest_.factor_names = factor_names;
  manifest_.metric_names = metric_names;
  manifest_.shard_count = options_.shards;
  manifest_.block_records = options_.block_records;

  std::filesystem::create_directories(dir_);
  shards_.reserve(options_.shards);
  shard_offsets_.assign(options_.shards, sizeof kShardMagic);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    const std::string path =
        dir_ + "/" + staged_name(Manifest::shard_file_name(s));
    auto& out = shards_.emplace_back(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("BbxWriter: cannot create '" + path + "'");
    }
    out.write(kShardMagic, sizeof kShardMagic);
  }
  pending_.reserve(options_.block_records);
}

void BbxWriter::consume(std::vector<RawRecord> batch) {
  if (!begun_) throw std::logic_error("BbxWriter: consume() before begin()");
  if (closed_) throw std::logic_error("BbxWriter: consume() after close()");
  for (RawRecord& record : batch) {
    if (record.factors.size() != manifest_.factor_names.size() ||
        record.metrics.size() != manifest_.metric_names.size()) {
      throw std::invalid_argument("BbxWriter: record width mismatch");
    }
    pending_.push_back(std::move(record));
    if (pending_.size() == options_.block_records) flush_block();
  }
}

void BbxWriter::flush_block() {
  if (pending_.empty()) return;
  scratch_raw_ = encode_block(pending_.data(), pending_.size(),
                              manifest_.factor_names.size(),
                              manifest_.metric_names.size());
  const std::string stored = block_compress(scratch_raw_);

  BlockInfo info;
  info.shard = static_cast<std::uint32_t>(manifest_.blocks.size() %
                                          options_.shards);
  info.offset = shard_offsets_[info.shard];
  info.stored_bytes = static_cast<std::uint32_t>(stored.size());
  info.raw_bytes = static_cast<std::uint32_t>(scratch_raw_.size());
  info.crc32 = crc32(stored.data(), stored.size());
  info.first_sequence = pending_.front().sequence;
  info.records = static_cast<std::uint32_t>(pending_.size());

  // Frame: sizes + checksum repeated in the shard itself, so a shard is
  // walkable (and corruption localizable) even without the manifest.
  std::string frame;
  frame.reserve(12 + stored.size());
  put_u32le(frame, info.stored_bytes);
  put_u32le(frame, info.raw_bytes);
  put_u32le(frame, info.crc32);
  frame.append(stored);

  std::ofstream& out = shards_[info.shard];
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (!out) {
    throw std::runtime_error("BbxWriter: write failed on shard " +
                             std::to_string(info.shard));
  }
  shard_offsets_[info.shard] += frame.size();
  records_ += pending_.size();
  manifest_.blocks.push_back(info);
  pending_.clear();
}

void BbxWriter::add_manifest_extra(const std::string& key,
                                   const std::string& value) {
  if (closed_) {
    throw std::logic_error("BbxWriter: add_manifest_extra() after close()");
  }
  manifest_.extra.emplace_back(key, value);
}

void BbxWriter::close() {
  if (closed_) return;
  if (!begun_) {
    // Nothing was ever opened; a no-op close keeps the sink contract.
    closed_ = true;
    return;
  }
  closed_ = true;
  flush_block();
  manifest_.total_records = records_;

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].flush();
    if (!shards_[s]) {
      throw std::runtime_error("BbxWriter: flush failed on shard " +
                               std::to_string(s));
    }
    shards_[s].close();
  }

  const std::string manifest_path =
      dir_ + "/" + staged_name(Manifest::file_name());
  {
    std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("BbxWriter: cannot create '" + manifest_path +
                               "'");
    }
    manifest_.write(out);
    out.flush();
    if (!out) {
      throw std::runtime_error("BbxWriter: manifest write failed");
    }
  }

  if (options_.atomic) {
    // A close() reached during exception unwinding is the engine
    // finalizing a *failed* campaign (the RecordSink contract): flush
    // what arrived, but leave everything under its staged name -- a
    // truncated bundle must never be published as complete.
    if (std::uncaught_exceptions() > 0) return;
    // Shards first, manifest last: the manifest's existence is the
    // bundle's completeness marker, so it must never appear before every
    // shard it indexes is in place.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::string name = Manifest::shard_file_name(s);
      std::filesystem::rename(dir_ + "/" + staged_name(name),
                              dir_ + "/" + name);
    }
    std::filesystem::rename(manifest_path,
                            dir_ + "/" + std::string(Manifest::file_name()));
  }
}

}  // namespace cal::io::archive
