#include "io/archive/bbx_writer.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <filesystem>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "io/archive/block_codec.hpp"
#include "io/archive/column_codec.hpp"
#include "io/archive/crc32.hpp"
#include "io/archive/wire.hpp"

namespace cal::io::archive {

namespace {

/// Numeric zone over already-widened doubles; degrades to kNone when any
/// value is non-finite (JSON cannot carry inf/nan, and a NaN row defeats
/// interval pruning anyway).
template <typename Values>
ColumnStats numeric_stats(const Values& values) {
  if (values.empty()) return ColumnStats{};  // no front() to seed from
  ColumnStats stats;
  stats.kind = ColumnStats::Kind::kNumeric;
  stats.min = stats.max = static_cast<double>(values.front());
  for (const auto v : values) {
    const double d = static_cast<double>(v);
    if (!std::isfinite(d)) return ColumnStats{};
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
  }
  return stats;
}

/// Zone map of one factor column: numeric [min, max] when every value in
/// the block is numeric, level membership when every value is a string
/// (capped at kZoneMaxLevels distinct levels), kNone for mixed blocks.
ColumnStats factor_stats(const std::vector<RawRecord>& records,
                         std::size_t col) {
  if (records.empty()) return ColumnStats{};  // no front() to seed from
  bool any_numeric = false, any_string = false;
  for (const RawRecord& r : records) {
    (r.factors[col].is_string() ? any_string : any_numeric) = true;
  }
  if (any_numeric && !any_string) {
    ColumnStats stats;
    stats.kind = ColumnStats::Kind::kNumeric;
    stats.min = stats.max = records.front().factors[col].as_real();
    for (const RawRecord& r : records) {
      const double d = r.factors[col].as_real();
      if (!std::isfinite(d)) return ColumnStats{};
      stats.min = std::min(stats.min, d);
      stats.max = std::max(stats.max, d);
    }
    return stats;
  }
  if (any_string && !any_numeric) {
    std::set<std::string> levels;
    for (const RawRecord& r : records) {
      levels.insert(r.factors[col].as_string());
      if (levels.size() > kZoneMaxLevels) return ColumnStats{};
    }
    ColumnStats stats;
    stats.kind = ColumnStats::Kind::kStrings;
    stats.levels.assign(levels.begin(), levels.end());
    return stats;
  }
  return ColumnStats{};
}

}  // namespace

BlockStats compute_block_stats(const std::vector<RawRecord>& records,
                               std::size_t n_factors, std::size_t n_metrics) {
  BlockStats stats;
  stats.columns.reserve(4 + n_factors + n_metrics);
  std::vector<double> scratch(records.size());
  const auto bookkeeping = [&](auto&& field) -> ColumnStats {
    for (std::size_t i = 0; i < records.size(); ++i) {
      scratch[i] = static_cast<double>(field(records[i]));
    }
    return numeric_stats(scratch);
  };
  stats.columns.push_back(
      bookkeeping([](const RawRecord& r) { return r.sequence; }));
  stats.columns.push_back(
      bookkeeping([](const RawRecord& r) { return r.cell_index; }));
  stats.columns.push_back(
      bookkeeping([](const RawRecord& r) { return r.replicate; }));
  stats.columns.push_back(
      bookkeeping([](const RawRecord& r) { return r.timestamp_s; }));
  for (std::size_t f = 0; f < n_factors; ++f) {
    stats.columns.push_back(factor_stats(records, f));
  }
  for (std::size_t m = 0; m < n_metrics; ++m) {
    stats.columns.push_back(bookkeeping(
        [m](const RawRecord& r) { return r.metrics[m]; }));
  }
  return stats;
}

BbxWriter::BbxWriter(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.shards == 0) {
    throw std::invalid_argument("BbxWriter: shards must be >= 1");
  }
  if (options_.block_records == 0) {
    throw std::invalid_argument("BbxWriter: block_records must be >= 1");
  }
}

BbxWriter::~BbxWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; close() explicitly to observe errors.
  }
}

std::string BbxWriter::staged_name(const std::string& final_name) const {
  return options_.atomic ? final_name + ".tmp" : final_name;
}

void BbxWriter::begin(const std::vector<std::string>& factor_names,
                      const std::vector<std::string>& metric_names,
                      std::size_t /*expected_records*/) {
  if (begun_) throw std::logic_error("BbxWriter: begin() called twice");
  if (closed_) throw std::logic_error("BbxWriter: begin() after close()");
  begun_ = true;
  manifest_.factor_names = factor_names;
  manifest_.metric_names = metric_names;
  manifest_.shard_count = options_.shards;
  manifest_.block_records = options_.block_records;

  std::filesystem::create_directories(dir_);
  shards_.reserve(options_.shards);
  shard_offsets_.assign(options_.shards, sizeof kShardMagic);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    const std::string path =
        dir_ + "/" + staged_name(Manifest::shard_file_name(s));
    auto& out = shards_.emplace_back(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("BbxWriter: cannot create '" + path + "'");
    }
    out.write(kShardMagic, sizeof kShardMagic);
  }
  pending_.reserve(options_.block_records);
}

void BbxWriter::consume(std::vector<RawRecord> batch) {
  if (!begun_) throw std::logic_error("BbxWriter: consume() before begin()");
  if (closed_) throw std::logic_error("BbxWriter: consume() after close()");
  for (RawRecord& record : batch) {
    if (record.factors.size() != manifest_.factor_names.size() ||
        record.metrics.size() != manifest_.metric_names.size()) {
      throw std::invalid_argument("BbxWriter: record width mismatch");
    }
    pending_.push_back(std::move(record));
    if (pending_.size() == options_.block_records) flush_block();
  }
}

void BbxWriter::flush_block() {
  if (pending_.empty()) return;
  CAL_SPAN("bbx.flush_block");
  {
    CAL_TIME_SCOPE("bbx.encode_seconds");
    scratch_raw_ = encode_block(pending_.data(), pending_.size(),
                                manifest_.factor_names.size(),
                                manifest_.metric_names.size());
  }
  std::string stored;
  {
    CAL_TIME_SCOPE("bbx.compress_seconds");
    stored = block_compress(scratch_raw_);
  }

  BlockInfo info;
  // Round-robin by *global* block index: a partial bundle's blocks land
  // on the same shards a single-process writer would have used.
  info.shard = static_cast<std::uint32_t>(
      (options_.first_block + manifest_.blocks.size()) % options_.shards);
  info.offset = shard_offsets_[info.shard];
  info.stored_bytes = static_cast<std::uint32_t>(stored.size());
  info.raw_bytes = static_cast<std::uint32_t>(scratch_raw_.size());
  {
    CAL_TIME_SCOPE("bbx.crc_seconds");
    info.crc32 = crc32(stored.data(), stored.size());
  }
  CAL_COUNT("bbx.blocks_flushed", 1);
  CAL_COUNT("bbx.records_flushed", pending_.size());
  CAL_COUNT("bbx.bytes_raw", scratch_raw_.size());
  CAL_COUNT("bbx.bytes_stored", stored.size());
  info.first_sequence = pending_.front().sequence;
  info.records = static_cast<std::uint32_t>(pending_.size());

  // Frame: sizes + checksum repeated in the shard itself, so a shard is
  // walkable (and corruption localizable) even without the manifest.
  std::string frame;
  frame.reserve(12 + stored.size());
  put_u32le(frame, info.stored_bytes);
  put_u32le(frame, info.raw_bytes);
  put_u32le(frame, info.crc32);
  frame.append(stored);

  std::ofstream& out = shards_[info.shard];
  CAL_FAULT_WRITE("bbx.flush_block", out, frame.data(), frame.size());
  if (!out) {
    throw std::runtime_error("BbxWriter: write failed on shard " +
                             std::to_string(info.shard));
  }
  shard_offsets_[info.shard] += frame.size();
  records_ += pending_.size();
  manifest_.blocks.push_back(info);
  manifest_.zones.push_back(compute_block_stats(
      pending_, manifest_.factor_names.size(),
      manifest_.metric_names.size()));
  pending_.clear();
}

void BbxWriter::add_manifest_extra(const std::string& key,
                                   const std::string& value) {
  if (closed_) {
    throw std::logic_error("BbxWriter: add_manifest_extra() after close()");
  }
  manifest_.extra.emplace_back(key, value);
}

void BbxWriter::close() {
  if (closed_) return;
  if (!begun_) {
    // Nothing was ever opened; a no-op close keeps the sink contract.
    closed_ = true;
    return;
  }
  closed_ = true;
  flush_block();
  manifest_.total_records = records_;

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].flush();
    if (!shards_[s]) {
      throw std::runtime_error("BbxWriter: flush failed on shard " +
                               std::to_string(s));
    }
    shards_[s].close();
  }

  const std::string manifest_path =
      dir_ + "/" + staged_name(Manifest::file_name());
  {
    std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("BbxWriter: cannot create '" + manifest_path +
                               "'");
    }
    // Serialize to memory first so the failpoint sees one write seam
    // covering the whole manifest (a torn manifest is a torn file, not a
    // syntactically valid half-index).
    std::ostringstream image;
    manifest_.write(image);
    const std::string bytes = image.str();
    CAL_FAULT_WRITE("bbx.write_manifest", out, bytes.data(), bytes.size());
    out.flush();
    if (!out) {
      throw std::runtime_error("BbxWriter: manifest write failed");
    }
  }

  if (options_.atomic) {
    // A close() reached during exception unwinding is the engine
    // finalizing a *failed* campaign (the RecordSink contract): flush
    // what arrived, but leave everything under its staged name -- a
    // truncated bundle must never be published as complete.
    if (std::uncaught_exceptions() > 0) return;
    // Shards first, manifest last: the manifest's existence is the
    // bundle's completeness marker, so it must never appear before every
    // shard it indexes is in place.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      CAL_FAULT_POINT("bbx.rename_shard");
      const std::string name = Manifest::shard_file_name(s);
      std::filesystem::rename(dir_ + "/" + staged_name(name),
                              dir_ + "/" + name);
    }
    CAL_FAULT_POINT("bbx.publish_manifest");
    std::filesystem::rename(manifest_path,
                            dir_ + "/" + std::string(Manifest::file_name()));
  }
}

}  // namespace cal::io::archive
