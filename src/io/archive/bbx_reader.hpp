#pragma once
// BbxReader: readback side of the bbx bundle format.
//
// The reader plans everything from the manifest: which shard holds each
// block, where, and what checksum it must carry.  Shards are read into
// memory once (they are compressed, so a shard buffer is a fraction of
// the table it decodes to) and blocks are verified + decompressed +
// decoded either sequentially or in parallel on a caller-provided
// core::WorkerPool -- block decode is embarrassingly parallel, and the
// pool's run_indexed keeps failure propagation in block (= plan) order.
//
// Reconstruction is value-identical to the CSV path: Value kinds are
// stored exactly, doubles are bit-preserved, and records come back in
// plan order.  Per-column projection decodes only the requested column
// of each block (decompression is per block, but the column offset
// table inside the image lets everything else be skipped).

#include <functional>
#include <string>
#include <vector>

#include "core/record.hpp"
#include "core/worker_pool.hpp"
#include "io/archive/manifest.hpp"

namespace cal::io::archive {

class BbxReader {
 public:
  /// Opens `<dir>`'s manifest; throws a clear error when the directory
  /// is not a complete bbx bundle.
  explicit BbxReader(std::string dir);

  const Manifest& manifest() const noexcept { return manifest_; }
  std::uint64_t size() const noexcept { return manifest_.total_records; }

  /// Decodes the whole bundle back into a RawTable, block-parallel when
  /// `pool` has more than one worker (pass nullptr for sequential).
  RawTable read_all(core::WorkerPool* pool = nullptr) const;

  /// Projection: one factor column, plan order.
  std::vector<Value> factor_column(const std::string& name,
                                   core::WorkerPool* pool = nullptr) const;

  /// Projection: one metric column, plan order.
  std::vector<double> metric_column(const std::string& name,
                                    core::WorkerPool* pool = nullptr) const;

  /// Scan hook for the query layer: verifies + decompresses each listed
  /// block (manifest block indices, any subset, any order) and hands its
  /// raw image to `body(ordinal, block, raw)` -- `ordinal` is the
  /// position within `blocks`, for slot-addressed result collection.
  /// Only the listed blocks' frames are read from disk (per-shard seeks
  /// driven by the manifest index), so a pruned scan's I/O and resident
  /// bytes are proportional to what survived, not to the bundle.
  /// Parallel over the pool when provided; `body` runs concurrently and
  /// must only touch per-ordinal state.  Failures propagate in ordinal
  /// order, like every other block-parallel path.
  void scan_blocks(const std::vector<std::size_t>& blocks,
                   core::WorkerPool* pool,
                   const std::function<void(std::size_t ordinal,
                                            std::size_t block,
                                            const std::string& raw)>& body)
      const;

  /// True when `dir` holds a bundle manifest (used by format
  /// auto-detection; does not validate the shards).
  static bool is_bundle(const std::string& dir);

 private:
  /// Loads every shard file into memory, validating magic bytes.
  std::vector<std::string> load_shards() const;

  /// Verifies block `index`'s frame + checksum and returns its
  /// decompressed image.
  std::string fetch_block(const std::vector<std::string>& shards,
                          std::size_t index) const;

  /// Shared frame verification: `frame` points at block `index`'s
  /// [stored][raw][crc][payload] bytes (caller guarantees the full
  /// frame is readable); returns the decompressed block image.
  std::string decode_frame(const char* frame, std::size_t index) const;

  /// Runs `body(block_index)` for every block, in parallel when the pool
  /// allows, rethrowing the lowest-block failure.
  void for_each_block(core::WorkerPool* pool,
                      const std::function<void(std::size_t)>& body) const;

  std::string dir_;
  Manifest manifest_;
};

}  // namespace cal::io::archive
