#include "io/archive/crc32.hpp"

#include "simd/dispatch.hpp"

namespace cal::io::archive {

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  // Dispatched: bytewise table (scalar tier), slice-by-8 (sse42), or
  // PCLMULQDQ folding (avx2).  Every tier computes the same IEEE 802.3
  // CRC; the simd kernel tests pin them against each other.
  return simd::kernels().crc32(data, size, seed);
}

}  // namespace cal::io::archive
