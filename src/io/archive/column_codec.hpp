#pragma once
// Per-block columnar encoding of raw records (the bbx block image).
//
// A block is a fixed-size slice of plan-ordered RawRecords pivoted into
// columns, each encoded by shape before the LZ pass sees it:
//
//   sequence / cell / replicate   zigzag-delta varints (sequence deltas
//                                 are 1 in plan order; cell deltas of a
//                                 randomized plan are small signed ints)
//   timestamp_s, metric columns   raw little-endian doubles (full
//                                 precision; noise does not compress,
//                                 so no cleverness is pretended)
//   factor columns                tagged per block: all-int columns
//                                 delta-varint, all-real columns raw
//                                 doubles, string/factor columns
//                                 dictionary-encoded (unique levels in
//                                 first-appearance order + per-record
//                                 indices), mixed columns per-value
//                                 tagged.  Kinds are preserved exactly,
//                                 so decode returns the Values that went
//                                 in -- not a text round-trip of them.
//
// The block image starts with varint record/factor/metric counts and a
// per-column byte-size table, so a reader can decode one projected
// column without touching the others.

#include <cstddef>
#include <string>
#include <vector>

#include "core/record.hpp"
#include "core/value.hpp"
#include "io/archive/wire.hpp"

namespace cal::io::archive {

/// Per-block factor column encodings (the tag byte).
enum class FactorTag : unsigned char {
  kInt = 0,     ///< zigzag-delta varints
  kReal = 1,    ///< raw LE doubles
  kString = 2,  ///< dictionary + per-record indices
  kMixed = 3,   ///< per-value kind tag; strings share the dictionary
};

/// Comparison ops of encoded-domain predicate evaluation; numerically
/// identical to query::value_compare (exact int64 when both sides are
/// ints, IEEE double compare otherwise -- NaN satisfies only kNe -- and
/// lexicographic for strings).
enum class MaskOp : unsigned char { kEq = 0, kNe, kLt, kLe, kGt, kGe };

/// One block image with its header parsed once: column byte ranges,
/// record count, and per-column decode -- the projection entry point
/// the per-column free functions below share.  Borrows `raw`; the
/// image must outlive the view.
class BlockView {
 public:
  BlockView(const std::string& raw, std::size_t n_factors,
            std::size_t n_metrics);

  std::size_t records() const noexcept { return records_; }

  /// Encoding tag of factor column `f` (peeked, nothing decoded).
  FactorTag factor_tag(std::size_t f) const;

  /// Per-column projections (unified ids are implicit in the names).
  std::vector<std::size_t> index_column(std::size_t which) const;
  std::vector<double> timestamp_column() const;
  std::vector<Value> factor_column(std::size_t f) const;
  std::vector<double> metric_column(std::size_t m) const;

  /// Encoded-domain predicate evaluation: fills mask[i] = (record i's
  /// `column_id` value OP literal) straight off the encoded bytes --
  /// delta varints stream through a running prefix, f64 columns are
  /// compared in place, string-dictionary columns compare the literal
  /// against each distinct level once and map the per-record codes.
  /// Returns false (mask unspecified) when the column's block encoding
  /// defeats encoded evaluation (mixed factor columns): the caller
  /// falls back to decoded evaluation.  Column ids: 0 sequence, 1 cell,
  /// 2 replicate, 3 timestamp, 4+f factor f, 4+n_factors+m metric m.
  bool eval_column_mask(std::size_t column_id, MaskOp op,
                        const Value& literal, std::vector<char>& mask) const;

 private:
  ByteReader column(std::size_t id) const;
  void eval_int_payload(ByteReader r, MaskOp op, const Value& literal,
                        std::vector<char>& mask) const;
  void eval_real_payload(ByteReader r, MaskOp op, const Value& literal,
                         std::vector<char>& mask) const;
  void eval_string_payload(ByteReader r, MaskOp op, const Value& literal,
                           std::vector<char>& mask) const;

  const std::string* raw_;
  std::size_t records_ = 0;
  std::size_t n_factors_ = 0;
  std::size_t n_metrics_ = 0;
  std::size_t payload_start_ = 0;
  std::vector<std::size_t> column_bytes_;
};

/// Encodes records[0, n) into a block image.  Record widths must agree
/// with `n_factors`/`n_metrics` (the writer validated them on consume).
std::string encode_block(const RawRecord* records, std::size_t n,
                         std::size_t n_factors, std::size_t n_metrics);

/// Decodes a full block image back into records.
std::vector<RawRecord> decode_block(const std::string& raw,
                                    std::size_t n_factors,
                                    std::size_t n_metrics);

/// Projection: decodes one bookkeeping index column of the block
/// (`which`: 0 = sequence, 1 = cell_index, 2 = replicate).
std::vector<std::size_t> decode_index_column(const std::string& raw,
                                             std::size_t n_factors,
                                             std::size_t n_metrics,
                                             std::size_t which);

/// Projection: decodes only the timestamp column of the block.
std::vector<double> decode_timestamp_column(const std::string& raw,
                                            std::size_t n_factors,
                                            std::size_t n_metrics);

/// Projection: decodes only factor column `factor_index` of the block.
std::vector<Value> decode_factor_column(const std::string& raw,
                                        std::size_t n_factors,
                                        std::size_t n_metrics,
                                        std::size_t factor_index);

/// Projection: decodes only metric column `metric_index` of the block.
std::vector<double> decode_metric_column(const std::string& raw,
                                         std::size_t n_factors,
                                         std::size_t n_metrics,
                                         std::size_t metric_index);

}  // namespace cal::io::archive
