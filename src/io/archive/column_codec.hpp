#pragma once
// Per-block columnar encoding of raw records (the bbx block image).
//
// A block is a fixed-size slice of plan-ordered RawRecords pivoted into
// columns, each encoded by shape before the LZ pass sees it:
//
//   sequence / cell / replicate   zigzag-delta varints (sequence deltas
//                                 are 1 in plan order; cell deltas of a
//                                 randomized plan are small signed ints)
//   timestamp_s, metric columns   raw little-endian doubles (full
//                                 precision; noise does not compress,
//                                 so no cleverness is pretended)
//   factor columns                tagged per block: all-int columns
//                                 delta-varint, all-real columns raw
//                                 doubles, string/factor columns
//                                 dictionary-encoded (unique levels in
//                                 first-appearance order + per-record
//                                 indices), mixed columns per-value
//                                 tagged.  Kinds are preserved exactly,
//                                 so decode returns the Values that went
//                                 in -- not a text round-trip of them.
//
// The block image starts with varint record/factor/metric counts and a
// per-column byte-size table, so a reader can decode one projected
// column without touching the others.

#include <cstddef>
#include <string>
#include <vector>

#include "core/record.hpp"
#include "core/value.hpp"

namespace cal::io::archive {

/// Encodes records[0, n) into a block image.  Record widths must agree
/// with `n_factors`/`n_metrics` (the writer validated them on consume).
std::string encode_block(const RawRecord* records, std::size_t n,
                         std::size_t n_factors, std::size_t n_metrics);

/// Decodes a full block image back into records.
std::vector<RawRecord> decode_block(const std::string& raw,
                                    std::size_t n_factors,
                                    std::size_t n_metrics);

/// Projection: decodes one bookkeeping index column of the block
/// (`which`: 0 = sequence, 1 = cell_index, 2 = replicate).
std::vector<std::size_t> decode_index_column(const std::string& raw,
                                             std::size_t n_factors,
                                             std::size_t n_metrics,
                                             std::size_t which);

/// Projection: decodes only the timestamp column of the block.
std::vector<double> decode_timestamp_column(const std::string& raw,
                                            std::size_t n_factors,
                                            std::size_t n_metrics);

/// Projection: decodes only factor column `factor_index` of the block.
std::vector<Value> decode_factor_column(const std::string& raw,
                                        std::size_t n_factors,
                                        std::size_t n_metrics,
                                        std::size_t factor_index);

/// Projection: decodes only metric column `metric_index` of the block.
std::vector<double> decode_metric_column(const std::string& raw,
                                         std::size_t n_factors,
                                         std::size_t n_metrics,
                                         std::size_t metric_index);

}  // namespace cal::io::archive
