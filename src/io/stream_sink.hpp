#pragma once
// Streaming CSV record sink with a double-buffered background writer.
//
// CsvStreamSink archives a campaign's raw records to RFC-4180 CSV while
// the campaign is still running, so million-run campaigns never hold the
// full RawTable.  Rows are formatted on the engine's merge thread (cheap,
// deterministic) into a front buffer; when the front buffer fills it is
// swapped with a back buffer that a dedicated writer thread drains to the
// underlying stream.  The producer only blocks when both buffers are
// full, i.e. when the disk genuinely cannot keep up -- measurement
// workers are never stalled by I/O latency, only by sustained I/O
// bandwidth.
//
// Memory bound: two buffers of Options::buffer_bytes plus the one batch
// in flight (at most Engine::Options::sink_batch records).
//
// Determinism: rows are produced through the same write_raw_csv_header /
// write_raw_csv_record formatters as RawTable::write_csv, so the streamed
// file is byte-identical to an in-memory table dump of the same campaign
// at any thread count (tests/io_stream_sink_test.cpp pins this down).
//
// Errors: a write failure on the background thread is captured and
// rethrown from the next consume() or from close().  close() must be
// called (the engine does) to guarantee the error surfaces; the
// destructor drains best-effort and swallows errors, as destructors must.

#include <condition_variable>
#include <cstddef>
#include <fstream>
#include <mutex>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "core/record_sink.hpp"

namespace cal::io {

/// Streambuf that appends straight into a caller-owned std::string --
/// lets the row formatters (which take std::ostream&) fill the sink's
/// front buffer with no per-record stream construction or copy.
class StringAppendBuf final : public std::streambuf {
 public:
  explicit StringAppendBuf(std::string& target) : target_(&target) {}

 protected:
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    target_->append(s, static_cast<std::size_t>(n));
    return n;
  }
  int_type overflow(int_type ch) override {
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      target_->push_back(traits_type::to_char_type(ch));
    }
    return ch;
  }

 private:
  std::string* target_;
};

struct CsvStreamSinkOptions {
  /// Capacity of each of the two swap buffers.  The writer is notified
  /// when the front buffer reaches this size; total formatted-byte
  /// memory is bounded by ~2x this value.
  std::size_t buffer_bytes = 1 << 20;
};

class CsvStreamSink final : public RecordSink {
 public:
  using Options = CsvStreamSinkOptions;

  /// Streams to a file (created/truncated).  Throws on open failure.
  explicit CsvStreamSink(const std::string& path, Options options = {});

  /// Streams to a caller-owned stream (kept alive by the caller until
  /// close()).  Used by tests and in-process pipelines.
  explicit CsvStreamSink(std::ostream& out, Options options = {});

  ~CsvStreamSink() override;

  CsvStreamSink(const CsvStreamSink&) = delete;
  CsvStreamSink& operator=(const CsvStreamSink&) = delete;

  void begin(const std::vector<std::string>& factor_names,
             const std::vector<std::string>& metric_names,
             std::size_t expected_records) override;
  void consume(std::vector<RawRecord> batch) override;

  /// Drains both buffers, joins the writer thread, flushes the stream,
  /// and rethrows any deferred write error.  Idempotent.
  void close() override;

  /// Records formatted so far (monotone; not necessarily on disk until
  /// close()).
  std::size_t records_written() const noexcept { return records_; }

 private:
  void start_writer();
  void writer_loop();
  /// Hands the front buffer to the writer; blocks only while the writer
  /// still owns a full back buffer.  Rethrows deferred writer errors.
  void swap_to_writer();
  void rethrow_if_failed();

  std::ofstream file_;   ///< storage for the path constructor
  std::ostream* out_;    ///< the stream actually written (never null)
  Options options_;

  std::string front_;    ///< producer-side buffer (engine thread only)
  StringAppendBuf front_buf_{front_};  ///< row formatter target
  std::ostream row_out_{&front_buf_};  ///< ostream view over front_
  std::string back_;     ///< writer-side buffer (guarded by mutex_)
  bool back_full_ = false;
  bool stop_ = false;
  std::exception_ptr error_;  ///< first writer failure (guarded by mutex_)
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread writer_;

  std::size_t records_ = 0;
  bool begun_ = false;
  bool closed_ = false;
};

}  // namespace cal::io
