#include "io/table_fmt.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace cal::io {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) out << '-';
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_series(std::ostream& out, const std::string& name,
                  const std::vector<double>& x, const std::vector<double>& y) {
  out << "# series: " << name << '\n';
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) {
    out << TextTable::num(x[i], 6) << ' ' << TextTable::num(y[i], 6) << '\n';
  }
  out << '\n';
}

void print_banner(std::ostream& out, const std::string& title) {
  out << '\n'
      << "==============================================================\n"
      << title << '\n'
      << "==============================================================\n";
}

}  // namespace cal::io
