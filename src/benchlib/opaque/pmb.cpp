#include "benchlib/opaque/pmb.hpp"

#include "stats/descriptive.hpp"

namespace cal::benchlib {

std::vector<PmbRow> run_pmb(const sim::net::NetworkSim& network,
                            const PmbOptions& options) {
  Rng rng(options.seed);
  double now = options.start_time_s;
  std::vector<PmbRow> rows;

  for (std::size_t p = options.min_power; p <= options.max_power; ++p) {
    const double size = static_cast<double>(1ULL << p);
    stats::Welford acc;
    for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
      const double us = network.measure_us(sim::net::NetOp::kPingPong, size,
                                           now, rng);
      acc.add(us);
      now += us * 1e-6;
    }
    PmbRow row;
    row.size_bytes = size;
    row.repetitions = acc.count();
    row.mean_us = acc.mean();
    row.sd_us = acc.stddev();
    // PMB reports throughput from half the round trip.
    const double one_way_us = row.mean_us / 2.0;
    row.mbytes_per_s = one_way_us > 0.0 ? size / one_way_us : 0.0;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace cal::benchlib
