#include "benchlib/opaque/netgauge_like.hpp"

#include "stats/descriptive.hpp"

namespace cal::benchlib {

NetgaugeResult run_netgauge(const sim::net::NetworkSim& network,
                            const NetgaugeOptions& options) {
  Rng rng(options.seed);
  double now = options.start_time_s;
  stats::NetGaugeDetector detector(options.detector);
  NetgaugeResult result;

  for (double size = options.start_size; size <= options.max_size;
       size += options.increment) {
    stats::Welford acc;
    for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
      const double us = network.measure_us(options.op, size, now, rng);
      acc.add(us);
      now += us * 1e-6;
    }
    const double mean_us = acc.mean();
    result.sizes.push_back(size);
    result.times_us.push_back(mean_us);
    detector.add(size, mean_us);  // online: analysis inside the sweep
  }

  result.breakpoints = detector.breakpoints();
  result.segments = detector.segment_fits();
  return result;
}

}  // namespace cal::benchlib
