#include "benchlib/opaque/plogp_like.hpp"

#include <algorithm>
#include <vector>

#include "stats/descriptive.hpp"

namespace cal::benchlib {

PlogpResult run_plogp(const sim::net::NetworkSim& network,
                      const PlogpOptions& options) {
  Rng rng(options.seed);
  double now = options.start_time_s;
  PlogpResult result;

  stats::PLogPProber prober(options.prober);
  const auto sampler = [&](double size) {
    std::vector<double> samples;
    samples.reserve(options.samples_per_point);
    for (std::size_t i = 0; i < options.samples_per_point; ++i) {
      const double us = network.measure_us(options.op, size, now, rng);
      samples.push_back(us);
      now += us * 1e-6;
      ++result.total_measurements;
    }
    return stats::median(samples);
  };

  result.probe = prober.probe(sampler, options.min_size, options.max_size);
  return result;
}

}  // namespace cal::benchlib
