#pragma once
// MultiMAPS-style opaque memory benchmark (Fig. 6 pseudo-code).
//
//   MultiMAPS(size, stride, nloops) {
//     allocate buffer[size];
//     timer_start();
//     for rep in (1..nloops)
//       for i in (0..size/stride)
//         access buffer[stride*i];
//     timer_stop();
//     bandwidth = accessed_bytes / elapsed;
//     deallocate buffer;
//   }
//
// Sizes and strides are swept in nested ascending loops; per
// configuration only the aggregated bandwidth survives.  This is the
// benchmark whose output the paper failed to reproduce on modern
// machines until all seven pitfalls were understood.

#include <cstdint>
#include <vector>

#include "sim/mem/stride_bench.hpp"

namespace cal::benchlib {

struct MultiMapsOptions {
  std::vector<std::size_t> sizes_bytes;
  std::vector<std::size_t> strides;   ///< in elements
  sim::mem::KernelConfig kernel;      ///< {element_bytes, unroll}
  std::size_t nloops = 100;
  std::size_t repetitions = 1;        ///< per configuration, averaged
  std::uint64_t seed = 23;
  double start_time_s = 0.0;
};

struct MultiMapsRow {
  std::size_t size_bytes = 0;
  std::size_t stride = 0;
  double mean_bandwidth_mbps = 0.0;  ///< the only thing reported
};

std::vector<MultiMapsRow> run_multimaps(sim::mem::MemSystem& system,
                                        const MultiMapsOptions& options);

}  // namespace cal::benchlib
