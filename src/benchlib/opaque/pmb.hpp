#pragma once
// PMB-style opaque network benchmark (Pallas MPI Benchmarks).
//
// Faithful to the structure the paper criticizes (Fig. 2 pseudo-code):
// message sizes in powers of two, N back-to-back repetitions per size in
// ascending size order, and *only* mean/sd summaries reported -- raw
// measurements are discarded as they stream by.  Power-of-two sampling is
// pitfall P2: it lands exactly on special-cased sizes (1024 B) and can
// never reveal that their behaviour is unrepresentative of neighbours.

#include <cstdint>
#include <vector>

#include "sim/net/network_sim.hpp"

namespace cal::benchlib {

struct PmbOptions {
  std::size_t min_power = 0;    ///< smallest size = 2^min_power (>= 1 byte)
  std::size_t max_power = 16;   ///< largest size = 2^max_power
  std::size_t repetitions = 30;
  std::uint64_t seed = 7;
  double start_time_s = 0.0;
};

struct PmbRow {
  double size_bytes = 0.0;
  std::size_t repetitions = 0;
  double mean_us = 0.0;
  double sd_us = 0.0;
  double mbytes_per_s = 0.0;  ///< size / (mean one-way), decimal MB/s
};

/// Runs the ping-pong sweep; returns one aggregated row per size.
std::vector<PmbRow> run_pmb(const sim::net::NetworkSim& network,
                            const PmbOptions& options = {});

}  // namespace cal::benchlib
