#include "benchlib/opaque/loogp_like.hpp"

#include "stats/descriptive.hpp"

namespace cal::benchlib {

LoogpResult run_loogp(const sim::net::NetworkSim& network,
                      const LoogpOptions& options) {
  Rng rng(options.seed);
  double now = options.start_time_s;
  LoogpResult result;

  for (double size = options.start_size; size <= options.max_size;
       size += options.increment) {
    stats::Welford acc;
    for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
      const double us = network.measure_us(options.op, size, now, rng);
      acc.add(us);
      now += us * 1e-6;
    }
    result.sizes.push_back(size);
    result.times_us.push_back(acc.mean());
  }

  result.breakpoints =
      stats::loogp_breakpoints(result.sizes, result.times_us, options.detector);
  return result;
}

}  // namespace cal::benchlib
