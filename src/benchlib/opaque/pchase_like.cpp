#include "benchlib/opaque/pchase_like.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/mem/hierarchy.hpp"
#include "sim/mem/latency_model.hpp"
#include "sim/mem/page_allocator.hpp"
#include "stats/descriptive.hpp"

namespace cal::benchlib {

double pchase_latency_ns(const sim::MachineSpec& machine,
                         std::size_t size_bytes, std::size_t accesses,
                         Rng& rng) {
  const std::size_t line = machine.l1().line_bytes;
  if (size_bytes < 2 * line) {
    throw std::invalid_argument("pchase: buffer smaller than two lines");
  }

  sim::mem::Hierarchy hierarchy(machine);
  // Contiguous backing (the chase randomizes within the buffer itself,
  // so physical page luck matters much less than for strided scans).
  const std::size_t pages =
      (size_bytes + machine.page_bytes - 1) / machine.page_bytes;
  std::vector<std::uint32_t> frames(pages);
  for (std::size_t i = 0; i < pages; ++i) {
    frames[i] = static_cast<std::uint32_t>(i);
  }
  const sim::mem::Buffer buffer(std::move(frames), machine.page_bytes,
                                size_bytes);

  // Random cyclic permutation over the lines (Sattolo's algorithm): the
  // chase visits every line exactly once per cycle, in an order the
  // prefetcher cannot guess.
  const std::size_t lines = size_bytes / line;
  std::vector<std::size_t> next(lines);
  for (std::size_t i = 0; i < lines; ++i) next[i] = i;
  for (std::size_t i = lines - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(next[i], next[j]);
  }

  // Warm-up cycle (compulsory misses), then the measured chase.
  std::size_t at = 0;
  for (std::size_t i = 0; i < lines; ++i) {
    hierarchy.access(buffer.translate(at * line));
    at = next[at];
  }
  double cycles = 0.0;
  at = 0;
  for (std::size_t i = 0; i < accesses; ++i) {
    const std::size_t level = hierarchy.access(buffer.translate(at * line));
    cycles += sim::mem::latency_cycles_for_level(machine, level);
    at = next[at];
  }
  const double per_access_cycles = cycles / static_cast<double>(accesses);
  return per_access_cycles / machine.freq.max_ghz;  // cycles/GHz == ns
}

std::vector<PchaseRow> run_pchase(const sim::MachineSpec& machine,
                                  const PchaseOptions& options) {
  if (options.sizes_bytes.empty()) {
    throw std::invalid_argument("run_pchase: no sizes");
  }
  Rng rng(options.seed);
  std::vector<PchaseRow> rows;
  for (const std::size_t size : options.sizes_bytes) {
    std::vector<double> samples;
    for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
      Rng run_rng = rng.split();
      samples.push_back(pchase_latency_ns(machine, size,
                                          options.accesses_per_run, run_rng));
    }
    rows.push_back({size, stats::mean(samples), stats::min_value(samples)});
  }
  return rows;
}

MeasureFn pchase_measure_fn(const sim::MachineSpec& machine,
                            std::size_t accesses_per_run) {
  return [machine, accesses_per_run](const PlannedRun& run,
                                     MeasureContext& ctx) {
    const auto size = static_cast<std::size_t>(run.values[0].as_int());
    const double ns =
        pchase_latency_ns(machine, size, accesses_per_run, *ctx.rng);
    return MeasureResult{
        {ns}, ns * 1e-9 * static_cast<double>(accesses_per_run)};
  };
}

}  // namespace cal::benchlib
