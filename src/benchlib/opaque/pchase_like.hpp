#pragma once
// PChase-style memory latency benchmark (Section II-C of the paper cites
// PChase as the richer memory-characterization tool: latency and
// bandwidth on multi-socket multi-core systems).
//
// The benchmark builds a random cyclic permutation over the cache lines
// of a buffer and walks it: every load depends on the previous one, so
// the measured time per access is the load-to-use latency of whatever
// level the line hits in.  Plotted against buffer size this yields the
// classic latency staircase (L1 / L2 / L3 / memory steps).
//
// Like the other tools under benchlib/opaque, the reference runner sweeps
// sizes in ascending order and reports means only; the white-box variant
// is simply running the same kernel under a Plan via `pchase_measure_fn`.

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "sim/machine.hpp"
#include "sim/mem/stride_bench.hpp"

namespace cal::benchlib {

struct PchaseOptions {
  std::vector<std::size_t> sizes_bytes;
  std::size_t accesses_per_run = 1 << 14;  ///< chase steps measured
  std::size_t repetitions = 3;
  std::uint64_t seed = 29;
  double start_time_s = 0.0;
};

struct PchaseRow {
  std::size_t size_bytes = 0;
  double mean_latency_ns = 0.0;
  double min_latency_ns = 0.0;
};

/// One pointer-chase measurement against a MemSystem-compatible machine.
/// Returns the average load-to-use latency in nanoseconds.
double pchase_latency_ns(const sim::MachineSpec& machine,
                         std::size_t size_bytes, std::size_t accesses,
                         Rng& rng);

/// The opaque sweep: ascending sizes, aggregated output only.
std::vector<PchaseRow> run_pchase(const sim::MachineSpec& machine,
                                  const PchaseOptions& options);

/// White-box integration: a MeasureFn over plans with a single
/// "size_bytes" factor, reporting metric "latency_ns".
MeasureFn pchase_measure_fn(const sim::MachineSpec& machine,
                            std::size_t accesses_per_run = 1 << 14);

}  // namespace cal::benchlib
