#pragma once
// NetGauge-style opaque benchmark: linear size sweep with *online*
// breakpoint detection (Section III).
//
// The sweep measures sizes in a fixed increment, ascending, and feeds
// each aggregated point to the online least-squares drift detector as it
// goes.  Because detection happens during the sweep, a temporal
// perturbation that straddles a stretch of consecutive sizes is
// indistinguishable from a protocol change -- pitfall P1 -- and the fixed
// start/increment bias the result -- pitfall P2.

#include <cstdint>
#include <vector>

#include "sim/net/network_sim.hpp"
#include "stats/breakpoint.hpp"

namespace cal::benchlib {

struct NetgaugeOptions {
  double start_size = 256.0;
  double increment = 1024.0;
  double max_size = 96.0 * 1024;
  std::size_t repetitions = 3;   ///< per size; the mean is fed online
  sim::net::NetOp op = sim::net::NetOp::kPingPong;
  stats::NetGaugeDetector::Options detector;
  std::uint64_t seed = 11;
  double start_time_s = 0.0;
};

struct NetgaugeResult {
  std::vector<double> sizes;
  std::vector<double> times_us;           ///< per-size means (all that is kept)
  std::vector<double> breakpoints;        ///< detected online
  std::vector<stats::LinearFit> segments; ///< per detected segment
};

NetgaugeResult run_netgauge(const sim::net::NetworkSim& network,
                            const NetgaugeOptions& options = {});

}  // namespace cal::benchlib
