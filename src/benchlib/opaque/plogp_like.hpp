#pragma once
// PLogP-style opaque benchmark: the adaptive doubling/halving prober.
//
// PLogP entangles experiment design with measurement even more tightly
// than NetGauge: *which* sizes get measured depends on the measurements
// themselves (extrapolation misses trigger bisection).  A perturbed
// measurement therefore not only corrupts one point -- it redirects the
// whole sampling schedule (pitfall P1).

#include <cstdint>

#include "sim/net/network_sim.hpp"
#include "stats/breakpoint.hpp"

namespace cal::benchlib {

struct PlogpOptions {
  double min_size = 1.0;
  double max_size = 256.0 * 1024;
  std::size_t samples_per_point = 3;  ///< median of this many measurements
  sim::net::NetOp op = sim::net::NetOp::kPingPong;
  stats::PLogPProber::Options prober;
  std::uint64_t seed = 13;
  double start_time_s = 0.0;
};

struct PlogpResult {
  stats::PLogPProber::Result probe;  ///< sampled points + breakpoints
  std::size_t total_measurements = 0;
};

PlogpResult run_plogp(const sim::net::NetworkSim& network,
                      const PlogpOptions& options = {});

}  // namespace cal::benchlib
