#include "benchlib/opaque/multimaps_like.hpp"

#include <stdexcept>

#include "stats/descriptive.hpp"

namespace cal::benchlib {

std::vector<MultiMapsRow> run_multimaps(sim::mem::MemSystem& system,
                                        const MultiMapsOptions& options) {
  if (options.sizes_bytes.empty() || options.strides.empty()) {
    throw std::invalid_argument("run_multimaps: empty sweep");
  }
  Rng rng(options.seed);
  double now = options.start_time_s;
  std::vector<MultiMapsRow> rows;

  // Nested ascending sweep -- the sequential order opaque tools use.
  for (const std::size_t stride : options.strides) {
    for (const std::size_t size : options.sizes_bytes) {
      stats::Welford acc;
      for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
        sim::mem::MeasurementRequest request;
        request.size_bytes = size;
        request.stride_elems = stride;
        request.kernel = options.kernel;
        request.nloops = options.nloops;
        Rng run_rng = rng.split();
        const auto result = system.measure(request, now, run_rng);
        acc.add(result.bandwidth_mbps);
        now += result.elapsed_s;
      }
      rows.push_back({size, stride, acc.mean()});
    }
  }
  return rows;
}

}  // namespace cal::benchlib
