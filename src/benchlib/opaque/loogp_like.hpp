#pragma once
// LoOgGP-style benchmark: linear sweep + offline neighborhood-maximum
// breakpoint detection with analyst mediation.
//
// LoOgGP is closest to the white-box methodology (it analyzes offline,
// after outlier removal), but its detection is sensitive to the
// neighborhood extent and the sweep's step size -- the paper quotes the
// original authors admitting as much.  Our tests sweep both knobs to
// demonstrate the sensitivity.

#include <cstdint>
#include <vector>

#include "sim/net/network_sim.hpp"
#include "stats/breakpoint.hpp"

namespace cal::benchlib {

struct LoogpOptions {
  double start_size = 256.0;
  double increment = 1024.0;
  double max_size = 96.0 * 1024;
  std::size_t repetitions = 3;
  sim::net::NetOp op = sim::net::NetOp::kSendOverhead;
  stats::LoOgGPOptions detector;
  std::uint64_t seed = 17;
  double start_time_s = 0.0;
};

struct LoogpResult {
  std::vector<double> sizes;
  std::vector<double> times_us;
  std::vector<double> breakpoints;  ///< candidates for the analyst
};

LoogpResult run_loogp(const sim::net::NetworkSim& network,
                      const LoogpOptions& options = {});

}  // namespace cal::benchlib
