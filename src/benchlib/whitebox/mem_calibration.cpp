#include "benchlib/whitebox/mem_calibration.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace cal::benchlib {

Plan make_mem_plan(const MemPlanOptions& options) {
  auto to_values = [](const std::vector<std::int64_t>& levels) {
    std::vector<Value> values;
    values.reserve(levels.size());
    for (const auto level : levels) values.push_back(Value(level));
    return values;
  };

  DesignBuilder builder(options.seed);
  if (!options.size_levels.empty()) {
    builder.add(Factor::levels("size_bytes", to_values(options.size_levels),
                               FactorCategory::kExperimentPlan));
  } else {
    builder.add(Factor::log_uniform_int("size_bytes", options.min_size,
                                        options.max_size,
                                        FactorCategory::kExperimentPlan));
    builder.samples_per_cell(options.sampled_sizes);
  }
  builder.add(Factor::levels("stride", to_values(options.strides),
                             FactorCategory::kKernel));
  builder.add(Factor::levels("elem_bytes", to_values(options.elem_bytes),
                             FactorCategory::kCompilation));
  builder.add(Factor::levels("unroll", to_values(options.unrolls),
                             FactorCategory::kCompilation));
  builder.add(Factor::levels("nloops", to_values(options.nloops),
                             FactorCategory::kExperimentPlan));
  builder.replications(options.replications);
  builder.randomize(options.randomize);
  return builder.build();
}

MeasureFn mem_measure_fn(sim::mem::MemSystem& system) {
  return mem_measure_fn(system, {});
}

MeasureFn mem_measure_fn(sim::mem::MemSystem& system,
                         std::vector<sim::pmu::Event> events) {
  if (!events.empty() && system.pmu() == nullptr) {
    throw std::invalid_argument(
        "mem_measure_fn: PMU events requested but the system was built "
        "without enable_pmu");
  }
  return [&system, events = std::move(events)](const PlannedRun& run,
                                               MeasureContext& ctx) {
    // Factor order is fixed by make_mem_plan; look up defensively anyway
    // by requiring the canonical widths.
    if (run.values.size() < 5) {
      throw std::runtime_error("mem_measure_fn: plan is missing factors");
    }
    sim::mem::MeasurementRequest request;
    request.size_bytes = static_cast<std::size_t>(run.values[0].as_int());
    request.stride_elems = static_cast<std::size_t>(run.values[1].as_int());
    request.kernel.element_bytes =
        static_cast<std::size_t>(run.values[2].as_int());
    request.kernel.unroll = static_cast<std::size_t>(run.values[3].as_int());
    request.nloops = static_cast<std::size_t>(run.values[4].as_int());

    const auto out = system.measure(request, ctx.now_s, *ctx.rng);
    MeasureResult result{
        {out.bandwidth_mbps, out.elapsed_s, out.avg_freq_ghz, out.l1_hit_rate},
        out.elapsed_s};
    // Counter deltas ride along as plain metric columns.  Exact below
    // 2^53 -- far beyond any simulated run's event count.
    result.metrics.reserve(result.metrics.size() + events.size());
    for (const sim::pmu::Event e : events) {
      result.metrics.push_back(static_cast<double>(out.pmu[e]));
    }
    return result;
  };
}

namespace {

/// Worker threads + optional shared pool for one campaign.
struct MemThreading {
  std::size_t threads = 1;
  std::shared_ptr<core::WorkerPool> pool;
};

Engine make_mem_engine(const MemCampaignOptions& options,
                       const MemThreading& threading) {
  Engine::Options engine_options;
  engine_options.seed = options.engine_seed;
  engine_options.inter_run_gap_s = options.inter_run_gap_s;
  engine_options.threads = threading.threads;
  engine_options.pool = threading.pool;
  std::vector<std::string> metrics = {"bandwidth_mbps", "elapsed_s",
                                      "avg_freq_ghz", "l1_hit_rate"};
  metrics.reserve(metrics.size() + options.pmu_events.size());
  for (const sim::pmu::Event e : options.pmu_events) {
    metrics.push_back(std::string("pmu.") + sim::pmu::event_name(e));
  }
  return Engine(std::move(metrics), engine_options);
}

Metadata make_mem_metadata(const sim::mem::MemSystemConfig& config,
                           const MemCampaignOptions& options) {
  Metadata md = Metadata::capture_build();
  md.set("benchmark", "whitebox_mem_calibration");
  md.set("machine", config.machine.name);
  md.set("processor", config.machine.processor);
  md.set("governor", sim::cpu::to_string(config.governor));
  md.set("sched_policy", sim::os::to_string(config.policy));
  md.set("alloc_technique", sim::mem::to_string(config.alloc));
  md.set("system_seed", static_cast<std::uint64_t>(config.system_seed));
  if (!options.pmu_events.empty()) {
    std::string joined;
    for (const sim::pmu::Event e : options.pmu_events) {
      if (!joined.empty()) joined += ',';
      joined += sim::pmu::event_name(e);
    }
    md.set("pmu_events", joined);
  }
  return md;
}

/// PMU columns require a counting simulator; the campaign enables it on
/// a copy of the caller's config so plain timing campaigns keep the
/// null-pointer (disabled) seams.
sim::mem::MemSystemConfig with_pmu_if_requested(
    const sim::mem::MemSystemConfig& config,
    const MemCampaignOptions& options) {
  sim::mem::MemSystemConfig out = config;
  if (!options.pmu_events.empty()) out.enable_pmu = true;
  return out;
}

}  // namespace

CampaignResult run_mem_campaign(sim::mem::MemSystem& system, Plan plan,
                                const MemCampaignOptions& options) {
  return Campaign(std::move(plan), make_mem_engine(options, MemThreading{}),
                  make_mem_metadata(system.config(), options))
      .run(mem_measure_fn(system, options.pmu_events));
}

namespace {

/// Threading honouring the engine determinism contract: time-dependent
/// configs (ondemand DVFS, daemon perturbation windows) need true
/// sequential timestamps, so they force threads = 1 and drop any shared
/// pool (same guard as run_net_calibration).
MemThreading mem_campaign_threading(const sim::mem::MemSystemConfig& config,
                                    const MemCampaignOptions& options) {
  const bool time_dependent =
      config.governor != sim::cpu::GovernorKind::kPerformance ||
      config.daemon_present;
  if (time_dependent) return MemThreading{};
  return MemThreading{options.threads, options.pool};
}

/// One identical simulator replica per worker: the engine calls the
/// factory sequentially before the pool starts, and each worker's
/// MemSystem is private to it afterwards.
MeasureFactory mem_replica_factory(const sim::mem::MemSystemConfig& config,
                                   const std::vector<sim::pmu::Event>& events) {
  return [&config, events](std::size_t) {
    auto system = std::make_shared<sim::mem::MemSystem>(config);
    MeasureFn measure = mem_measure_fn(*system, events);
    return [system, measure](const PlannedRun& run, MeasureContext& ctx) {
      return measure(run, ctx);
    };
  };
}

}  // namespace

CampaignResult run_mem_campaign(const sim::mem::MemSystemConfig& config,
                                Plan plan, const MemCampaignOptions& options) {
  const sim::mem::MemSystemConfig cfg = with_pmu_if_requested(config, options);
  return Campaign(std::move(plan),
                  make_mem_engine(options, mem_campaign_threading(cfg,
                                                                  options)),
                  make_mem_metadata(cfg, options))
      .run(mem_replica_factory(cfg, options.pmu_events));
}

StreamedCampaign run_mem_campaign(const sim::mem::MemSystemConfig& config,
                                  Plan plan, RecordSink& sink,
                                  const MemCampaignOptions& options) {
  const sim::mem::MemSystemConfig cfg = with_pmu_if_requested(config, options);
  return Campaign(std::move(plan),
                  make_mem_engine(options, mem_campaign_threading(cfg,
                                                                  options)),
                  make_mem_metadata(cfg, options))
      .run(mem_replica_factory(cfg, options.pmu_events), sink);
}

std::vector<SizeDiagnostics> diagnose_by_size(const RawTable& table) {
  std::vector<SizeDiagnostics> out;
  const auto summaries =
      stats::summarize_groups(table, {"size_bytes"}, "bandwidth_mbps");
  const auto groups =
      stats::group_metric(table, {"size_bytes"}, "bandwidth_mbps");
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    SizeDiagnostics diag;
    diag.size_bytes = summaries[i].key.front().as_int();
    diag.summary = summaries[i];
    diag.modes = groups[i].samples.size() >= 2
                     ? stats::split_modes(groups[i].samples)
                     : stats::ModeSplit{};
    out.push_back(std::move(diag));
  }
  return out;
}

stats::OutlierDiagnosis diagnose_temporal(const RawTable& table) {
  // Different factor combinations have legitimately different bandwidth
  // levels; normalize each measurement by its cell's median so only
  // *within-cell* anomalies (the temporal ones) stand out, then order by
  // execution sequence.
  const std::size_t bw = table.metric_index("bandwidth_mbps");
  std::map<std::size_t, std::vector<double>> by_cell;
  for (const auto& rec : table.records()) {
    by_cell[rec.cell_index].push_back(rec.metrics[bw]);
  }
  std::map<std::size_t, double> cell_median;
  for (const auto& [cell, samples] : by_cell) {
    cell_median[cell] = stats::median(samples);
  }

  std::vector<std::pair<std::size_t, double>> seq;
  seq.reserve(table.size());
  for (const auto& rec : table.records()) {
    const double med = cell_median[rec.cell_index];
    seq.emplace_back(rec.sequence,
                     med > 0.0 ? rec.metrics[bw] / med : rec.metrics[bw]);
  }
  std::sort(seq.begin(), seq.end());
  std::vector<double> ordered;
  ordered.reserve(seq.size());
  for (const auto& [_, value] : seq) ordered.push_back(value);
  return stats::diagnose_outliers(ordered);
}

}  // namespace cal::benchlib
