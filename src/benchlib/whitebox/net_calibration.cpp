#include "benchlib/whitebox/net_calibration.hpp"

#include <limits>
#include <stdexcept>

namespace cal::benchlib {

namespace {

/// The three campaign stages shared by the table-returning and streaming
/// entry points; the measure closure indexes factors resolved from the
/// plan before it is moved into the Campaign.
struct NetCampaignSetup {
  Campaign campaign;
  MeasureFn measure;
};

NetCampaignSetup make_net_campaign(const sim::net::NetworkSim& network,
                                   const NetCalibrationOptions& options) {
  using sim::net::NetOp;

  Plan plan =
      DesignBuilder(options.seed)
          .add(Factor::levels("op", {Value("send"), Value("recv"),
                                     Value("pingpong")},
                              FactorCategory::kExperimentPlan))
          .add(Factor::log_uniform_real("size_bytes", options.min_size,
                                        options.max_size,
                                        FactorCategory::kExperimentPlan))
          .samples_per_cell(options.samples_per_op)
          .randomize(true)
          .build();

  Engine::Options engine_options;
  engine_options.seed = options.seed ^ 0xC0FFEE;
  engine_options.inter_run_gap_s = options.inter_run_gap_s;
  // Perturbation windows are time-dependent: force the sequential path
  // (and drop any shared pool) so they see true timestamps.
  const bool time_dependent = !network.config().perturbations.empty();
  engine_options.threads = time_dependent ? 1 : options.threads;
  engine_options.pool = time_dependent ? nullptr : options.pool;
  Engine engine({"time_us"}, engine_options);

  Metadata md = Metadata::capture_build();
  md.set("benchmark", "whitebox_net_calibration");
  md.set("link", network.link().name);
  md.set("size_min_bytes", options.min_size);
  md.set("size_max_bytes", options.max_size);
  md.set("size_distribution", "log_uniform (Eq. 1)");

  const std::size_t op_idx = plan.factor_index("op");
  const std::size_t size_idx = plan.factor_index("size_bytes");
  MeasureFn measure = [&network, op_idx, size_idx](
                          const PlannedRun& run,
                          MeasureContext& ctx) -> MeasureResult {
    const std::string& op_name = run.values[op_idx].as_string();
    const double size = run.values[size_idx].as_real();
    NetOp op = NetOp::kPingPong;
    if (op_name == "send") op = NetOp::kSendOverhead;
    else if (op_name == "recv") op = NetOp::kRecvOverhead;
    const double us = network.measure_us(op, size, ctx.now_s, *ctx.rng);
    return MeasureResult{{us}, us * 1e-6};
  };

  return NetCampaignSetup{
      Campaign(std::move(plan), std::move(engine), std::move(md)),
      std::move(measure)};
}

}  // namespace

CampaignResult run_net_calibration(const sim::net::NetworkSim& network,
                                   const NetCalibrationOptions& options) {
  const NetCampaignSetup setup = make_net_campaign(network, options);
  return setup.campaign.run(setup.measure);
}

StreamedCampaign run_net_calibration(const sim::net::NetworkSim& network,
                                     RecordSink& sink,
                                     const NetCalibrationOptions& options) {
  const NetCampaignSetup setup = make_net_campaign(network, options);
  return setup.campaign.run(setup.measure, sink);
}

namespace {

stats::PiecewiseFit fit_op(const RawTable& table, const std::string& op,
                           const std::vector<double>& breakpoints) {
  const RawTable subset = table.filter("op", Value(op));
  if (subset.size() < 2) {
    throw std::runtime_error("analyze_net_calibration: no rows for op '" +
                             op + "'");
  }
  return stats::fit_piecewise(subset.factor_column_real("size_bytes"),
                              subset.metric_column("time_us"),
                              breakpoints);
}

}  // namespace

NetModel analyze_net_calibration(const RawTable& table,
                                 const std::vector<double>& breakpoints) {
  NetModel model;
  model.send_fit = fit_op(table, "send", breakpoints);
  model.recv_fit = fit_op(table, "recv", breakpoints);
  model.pingpong_fit = fit_op(table, "pingpong", breakpoints);

  // Derive LogGP-family parameters per segment.  The ping-pong time is
  // modeled as 2*(o_s + L + G*s + o_r); its slope gives 2*(G + per-byte
  // overheads) and its intercept 2*(o_s0 + L + o_r0).
  for (std::size_t s = 0; s < model.pingpong_fit.segments.size(); ++s) {
    const auto& pp = model.pingpong_fit.segments[s];
    const auto& snd = model.send_fit.segments[s];
    const auto& rcv = model.recv_fit.segments[s];

    SegmentParams params;
    params.lo = pp.lo == -std::numeric_limits<double>::infinity() ? 0.0 : pp.lo;
    params.hi = pp.hi;
    params.o_s_us = snd.fit.intercept;
    params.o_s_per_byte = snd.fit.slope;
    params.o_r_us = rcv.fit.intercept;
    params.o_r_per_byte = rcv.fit.slope;
    params.latency_us =
        pp.fit.intercept / 2.0 - params.o_s_us - params.o_r_us;
    params.gap_per_byte_us =
        pp.fit.slope / 2.0 - params.o_s_per_byte - params.o_r_per_byte;
    params.bandwidth_mbps = params.gap_per_byte_us > 0.0
                                ? 1.0 / params.gap_per_byte_us
                                : 0.0;
    model.segments.push_back(params);
  }
  return model;
}

}  // namespace cal::benchlib
