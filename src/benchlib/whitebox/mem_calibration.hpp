#pragma once
// White-box memory calibration (Section V-B of the paper).
//
// The factor set follows Fig. 13's cause-and-effect diagram: experiment
// plan (size, stride, cycles/nloops, repetitions, sequence order),
// compilation (element type, loop unrolling), memory allocation
// (technique), operating system (governor, scheduling policy) and
// architecture (which simulated machine) -- all declared a priori,
// crossed, randomized and replicated.  The helpers here wire a Plan whose
// factors use the canonical names below to a MemSystem, and provide the
// stage-3 per-group diagnostics (boxplots, mode splits, temporal
// clustering) used throughout the figure reproductions.
//
// Canonical factor names understood by mem_measure_fn():
//   size_bytes, stride, elem_bytes, unroll, nloops

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "sim/mem/stride_bench.hpp"
#include "stats/group.hpp"
#include "stats/modes.hpp"
#include "stats/outlier.hpp"

namespace cal::benchlib {

struct MemPlanOptions {
  /// Explicit size levels (bytes); if empty, `sampled_sizes` random
  /// log-uniform sizes in [min_size, max_size] are drawn per cell.
  std::vector<std::int64_t> size_levels;
  std::int64_t min_size = 1024;
  std::int64_t max_size = 100 * 1024;
  std::size_t sampled_sizes = 50;

  std::vector<std::int64_t> strides = {1};
  std::vector<std::int64_t> elem_bytes = {4};
  std::vector<std::int64_t> unrolls = {1};
  std::vector<std::int64_t> nloops = {100};

  std::size_t replications = 42;  ///< the paper's repetition count
  bool randomize = true;
  std::uint64_t seed = 37;
};

/// Builds the factorial, randomized plan.
Plan make_mem_plan(const MemPlanOptions& options);

/// Measurement function mapping the canonical factors onto MemSystem.
MeasureFn mem_measure_fn(sim::mem::MemSystem& system);

/// As above, additionally emitting one metric per requested PMU event
/// (after the base metrics, in `events` order).  The system must have
/// been built with enable_pmu.
MeasureFn mem_measure_fn(sim::mem::MemSystem& system,
                         std::vector<sim::pmu::Event> events);

struct MemCampaignOptions {
  double inter_run_gap_s = 200e-6;
  std::uint64_t engine_seed = 41;
  /// Simulated PMU events to record as first-class campaign metrics,
  /// named `pmu.<event>` after the base metrics.  Non-empty forces
  /// enable_pmu on the simulator config (config-based overloads) or
  /// requires a PMU-enabled system (the MemSystem& overload).  Counter
  /// columns are a pure function of each run, so they stay byte-identical
  /// at any worker count and obey the same determinism contract as the
  /// timing metrics.
  std::vector<sim::pmu::Event> pmu_events;
  /// Engine worker threads (1 = sequential, 0 = hardware concurrency).
  /// Only honoured by the config-based overload, which can build one
  /// simulator replica per worker.
  std::size_t threads = 1;
  /// Optional long-lived worker pool shared across campaigns (supersedes
  /// `threads`; see Engine::Options::pool).  Like `threads`, it is
  /// only honoured by the config-based overloads and is dropped for
  /// time-dependent configs, which must run sequentially.
  std::shared_ptr<core::WorkerPool> pool;
};

/// Runs a plan against a system and returns the raw bundle
/// (metrics: bandwidth_mbps, elapsed_s, avg_freq_ghz, l1_hit_rate).
/// Always sequential: a single MemSystem is stateful and not thread-safe.
CampaignResult run_mem_campaign(sim::mem::MemSystem& system, Plan plan,
                                const MemCampaignOptions& options = {});

/// Parallel-capable overload: builds one MemSystem per engine worker from
/// `config` (identical replicas -- same system_seed), so campaigns can be
/// sharded across options.threads workers.  Time-dependent configs
/// (ondemand governor, daemon perturbation windows) should keep
/// threads == 1; see the Engine determinism contract.
CampaignResult run_mem_campaign(const sim::mem::MemSystemConfig& config,
                                Plan plan,
                                const MemCampaignOptions& options = {});

/// Streaming variant of the config-based overload: raw records flow to
/// `sink` (e.g. an io::CsvStreamSink) in plan-ordered batches instead of
/// accumulating in a RawTable, so campaign size is not bounded by memory.
/// The sink's archive is byte-identical to the table the non-streaming
/// overload would have written.
StreamedCampaign run_mem_campaign(const sim::mem::MemSystemConfig& config,
                                  Plan plan, RecordSink& sink,
                                  const MemCampaignOptions& options = {});

/// Stage-3 convenience: per-size bandwidth summary with the diagnostics
/// an opaque tool cannot produce.
struct SizeDiagnostics {
  std::int64_t size_bytes = 0;
  stats::GroupSummary summary;
  stats::ModeSplit modes;
};

std::vector<SizeDiagnostics> diagnose_by_size(const RawTable& table);

/// Whole-campaign temporal diagnosis of the bandwidth metric, ordered by
/// execution sequence (detects Fig. 11-style perturbation windows).
stats::OutlierDiagnosis diagnose_temporal(const RawTable& table);

}  // namespace cal::benchlib
