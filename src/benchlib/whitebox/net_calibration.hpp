#pragma once
// White-box network calibration (Section V-A of the paper).
//
// Stage 1: a design with the operation factor (blocking receive,
// asynchronous send, ping-pong) crossed with message sizes drawn from the
// log-uniform distribution of Eq. (1), fully randomized in order.
// Stage 2: the engine replays the design against the network simulator
// and keeps every raw observation.
// Stage 3: supervised piecewise regression with analyst breakpoints per
// operation, from which all LogP-family parameters are derived:
//     o_s(s), o_r(s)  from the overhead operations,
//     L and G         from the ping-pong intercept/slope.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "sim/net/network_sim.hpp"
#include "stats/piecewise.hpp"

namespace cal::benchlib {

struct NetCalibrationOptions {
  double min_size = 1.0;
  double max_size = 256.0 * 1024;
  std::size_t samples_per_op = 400;  ///< random sizes per operation
  std::uint64_t seed = 31;
  double inter_run_gap_s = 100e-6;
  /// Engine worker threads (1 = sequential, 0 = hardware concurrency).
  /// NetworkSim::measure_us is const, so the shared measure is
  /// thread-safe; keep 1 when the sim has perturbation windows (they are
  /// time-dependent and need true sequential timestamps).
  std::size_t threads = 1;
  /// Optional long-lived worker pool shared across campaigns (supersedes
  /// `threads`; see Engine::Options::pool).  Dropped, like `threads`,
  /// when the sim has perturbation windows.
  std::shared_ptr<core::WorkerPool> pool;
};

/// Runs the calibration campaign; the returned bundle holds the plan, the
/// raw table (factors: "op", "size_bytes"; metric: "time_us") and
/// capture metadata.
CampaignResult run_net_calibration(const sim::net::NetworkSim& network,
                                   const NetCalibrationOptions& options = {});

/// Streaming variant: every raw observation flows to `sink` in
/// plan-ordered batches (byte-identical archive, bounded memory); only
/// the plan and metadata come back.
StreamedCampaign run_net_calibration(const sim::net::NetworkSim& network,
                                     RecordSink& sink,
                                     const NetCalibrationOptions& options = {});

/// LogGP-style parameters for one size regime.
struct SegmentParams {
  double lo = 0.0, hi = 0.0;          ///< size range, bytes
  double o_s_us = 0.0;                ///< send overhead at segment midpoint
  double o_s_per_byte = 0.0;
  double o_r_us = 0.0;
  double o_r_per_byte = 0.0;
  double latency_us = 0.0;            ///< L
  double gap_per_byte_us = 0.0;       ///< G
  double bandwidth_mbps = 0.0;        ///< 1/G
};

struct NetModel {
  stats::PiecewiseFit send_fit;
  stats::PiecewiseFit recv_fit;
  stats::PiecewiseFit pingpong_fit;
  std::vector<SegmentParams> segments;
};

/// Stage-3 analysis with analyst-provided breakpoints (the supervised
/// procedure the paper advocates).
NetModel analyze_net_calibration(const RawTable& table,
                                 const std::vector<double>& breakpoints);

}  // namespace cal::benchlib
