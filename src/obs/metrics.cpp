#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace cal::obs::metrics {

namespace {

/// Function-local statics so the registry is usable during static init
/// (an instrumentation site hit from a global constructor must not race
/// the registry's own construction).  Instruments are held by
/// unique_ptr so the references handed out stay stable across rehashes
/// and reset().
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

struct Registry {
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_killed{false};
std::atomic<bool> g_env_loaded{false};
std::once_flag g_env_once;

/// Loads CAL_METRICS once: "off"/"0" pins the registry disarmed for the
/// process (kill switch beats any later arm()), "on"/"1" arms eagerly.
void ensure_env_loaded() noexcept {
  if (g_env_loaded.load(std::memory_order_acquire)) return;
  std::call_once(g_env_once, [] {
    if (const char* env = std::getenv("CAL_METRICS");
        env != nullptr && *env != '\0') {
      if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
        g_killed.store(true, std::memory_order_relaxed);
        g_enabled.store(false, std::memory_order_relaxed);
      } else if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0) {
        g_enabled.store(true, std::memory_order_relaxed);
      }
    }
    g_env_loaded.store(true, std::memory_order_release);
  });
}

std::string prometheus_name(const std::string& name) {
  std::string out = "cal_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_f64(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9f", v);
  out += buf;
}

/// HELP text per the exposition format: backslash and newline escaped.
std::string escape_help(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Deduplicates post-sanitization collisions: distinct registry names
/// ("a.b" vs "a-b", or a counter and a gauge sharing a sanitized form)
/// must not expose the same sample name twice.  First family keeps the
/// base name, later colliders get a deterministic _2, _3, ... suffix --
/// deterministic because the snapshot walks name-sorted sections in a
/// fixed order.
class NameDeduper {
 public:
  std::string unique(const std::string& registry_name) {
    std::string p = prometheus_name(registry_name);
    const int n = ++used_[p];
    if (n > 1) p += "_" + std::to_string(n);
    return p;
  }

 private:
  std::map<std::string, int> used_;
};

}  // namespace

bool enabled() noexcept {
  ensure_env_loaded();
  return g_enabled.load(std::memory_order_relaxed);
}

void arm() {
  ensure_env_loaded();
  if (g_killed.load(std::memory_order_relaxed)) return;
  g_enabled.store(true, std::memory_order_relaxed);
}

void disarm() {
  ensure_env_loaded();
  g_enabled.store(false, std::memory_order_relaxed);
}

bool kill_switch() noexcept {
  ensure_env_loaded();
  return g_killed.load(std::memory_order_relaxed);
}

Counter& counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto& slot = registry().counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto& slot = registry().gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto& slot = registry().histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void reset() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (auto& [name, c] : registry().counters) c->reset_value();
  for (auto& [name, g] : registry().gauges) g->reset_value();
  for (auto& [name, h] : registry().histograms) h->reset_value();
}

Snapshot snapshot() {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(registry_mutex());
  // std::map iteration is already name-sorted; the snapshot inherits
  // the deterministic order.
  for (const auto& [name, c] : registry().counters) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : registry().gauges) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : registry().histograms) {
    Snapshot::HistogramValue v;
    v.name = name;
    for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
      v.buckets[i] = h->bucket(i);
    }
    v.count = h->count();
    v.sum_ns = h->sum_ns();
    snap.histograms.push_back(std::move(v));
  }
  return snap;
}

std::string render_text(const Snapshot& snap) {
  std::string out;
  NameDeduper dedupe;
  for (const auto& [name, value] : snap.counters) {
    const std::string p = dedupe.unique(name);
    out += "# HELP " + p + " Registry counter '" + escape_help(name) + "'.\n";
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = dedupe.unique(name);
    out += "# HELP " + p + " Registry gauge '" + escape_help(name) + "'.\n";
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string p = dedupe.unique(h.name);
    out += "# HELP " + p + " Registry histogram '" + escape_help(h.name) +
           "'.\n";
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
      cumulative += h.buckets[i];
      out += p + "_bucket{le=\"";
      if (i == Histogram::kBuckets) {
        out += "+Inf";
      } else {
        // Bucket i holds samples < 2^i microseconds; render the upper
        // bound in seconds.
        append_f64(out, static_cast<double>(std::uint64_t{1} << i) * 1e-6);
      }
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += p + "_sum ";
    append_f64(out, static_cast<double>(h.sum_ns) * 1e-9);
    out += "\n" + p + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string render_text() { return render_text(snapshot()); }

}  // namespace cal::obs::metrics
