#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace cal::obs::trace {

namespace {

struct Event {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

/// One per recording thread.  The owning thread writes slots [0, next)
/// and publishes them with a release store on `published`; the flusher
/// acquire-loads `published` and only reads below it.  Slots are never
/// recycled (full buffer -> drop + count), so published slots are
/// immutable once visible.
struct ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t id) : tid(id) { slots.resize(kCapacity); }

  const std::uint32_t tid;
  std::vector<Event> slots;
  std::size_t next = 0;                    ///< writer-local
  std::atomic<std::size_t> published{0};   ///< release by writer
  std::size_t flushed = 0;                 ///< flusher-local (under flush mutex)
  std::mutex name_mu;                      ///< guards `name`
  std::string name;
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

/// Leaked on purpose: buffers must outlive their threads (a flush can
/// run after a worker exited) and outlive static destruction (the
/// CAL_TRACE atexit flush walks them).
std::vector<ThreadBuffer*>& buffers() {
  static auto* v = new std::vector<ThreadBuffer*>();
  return *v;
}

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_env_loaded{false};
std::once_flag g_env_once;
std::atomic<std::uint64_t> g_dropped{0};

std::string& env_flush_path() {
  static auto* p = new std::string();
  return *p;
}

void atexit_flush() {
  if (!env_flush_path().empty()) flush_json_file(env_flush_path());
}

void ensure_env_loaded() noexcept {
  if (g_env_loaded.load(std::memory_order_acquire)) return;
  std::call_once(g_env_once, [] {
    if (const char* env = std::getenv("CAL_TRACE");
        env != nullptr && *env != '\0') {
      env_flush_path() = env;
      g_enabled.store(true, std::memory_order_relaxed);
      std::atexit(atexit_flush);
    }
    g_env_loaded.store(true, std::memory_order_release);
  });
}

thread_local ThreadBuffer* tl_buffer = nullptr;
thread_local std::string* tl_pending_name = nullptr;

ThreadBuffer& local_buffer() {
  if (tl_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(registry_mutex());
    auto* buf = new ThreadBuffer(static_cast<std::uint32_t>(buffers().size()));
    if (tl_pending_name != nullptr) buf->name = *tl_pending_name;
    buffers().push_back(buf);
    tl_buffer = buf;
  }
  return *tl_buffer;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

/// Microsecond timestamp with fixed 3-decimal precision: deterministic
/// formatting, sub-microsecond resolution preserved.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

bool enabled() noexcept {
  ensure_env_loaded();
  return g_enabled.load(std::memory_order_relaxed);
}

void start() {
  ensure_env_loaded();
  g_enabled.store(true, std::memory_order_relaxed);
}

void stop() {
  ensure_env_loaded();
  g_enabled.store(false, std::memory_order_relaxed);
}

void set_thread_name(const std::string& name) {
  if (tl_buffer != nullptr) {
    std::lock_guard<std::mutex> lock(tl_buffer->name_mu);
    tl_buffer->name = name;
    return;
  }
  // No buffer yet (tracing may never arm): stash the name thread-local
  // so a buffer created later inherits it.  Leaked like the buffers;
  // thread_local destructors would race an exit-time flush.
  if (tl_pending_name == nullptr) tl_pending_name = new std::string();
  *tl_pending_name = name;
}

std::uint64_t now_ns() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  const auto d = std::chrono::steady_clock::now() - epoch;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns) {
  ThreadBuffer& b = local_buffer();
  const std::size_t i = b.next;
  if (i >= kCapacity) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  b.slots[i] = Event{name, start_ns, dur_ns};
  b.next = i + 1;
  b.published.store(i + 1, std::memory_order_release);
}

std::uint64_t dropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

void flush_json(std::ostream& out) {
  // One flusher at a time: `flushed` bookkeeping is single-writer under
  // the registry mutex, which also freezes the buffer list.
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::string text = "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) text += ",\n";
    first = false;
  };
  for (ThreadBuffer* b : buffers()) {
    std::string name;
    {
      std::lock_guard<std::mutex> name_lock(b->name_mu);
      name = b->name;
    }
    if (name.empty()) name = "thread-" + std::to_string(b->tid);
    comma();
    text += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
            std::to_string(b->tid) + ",\"args\":{\"name\":\"";
    append_json_escaped(text, name);
    text += "\"}}";
  }
  for (ThreadBuffer* b : buffers()) {
    const std::size_t published = b->published.load(std::memory_order_acquire);
    for (std::size_t i = b->flushed; i < published; ++i) {
      const Event& e = b->slots[i];
      comma();
      text += "{\"name\":\"";
      append_json_escaped(text, e.name);
      text += "\",\"cat\":\"cal\",\"ph\":\"X\",\"ts\":";
      append_us(text, e.start_ns);
      text += ",\"dur\":";
      append_us(text, e.dur_ns);
      text += ",\"pid\":1,\"tid\":" + std::to_string(b->tid) + "}";
    }
    b->flushed = published;
  }
  text += "]}\n";
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
}

void flush_json_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("trace: cannot open '" + path + "' for writing");
  }
  flush_json(out);
}

}  // namespace cal::obs::trace
