#pragma once

/// Process-wide telemetry registry: named counters, gauges, and
/// fixed-bucket latency histograms backed by relaxed atomics.
///
/// The discipline mirrors core::fault: instrumentation sites compile to
/// a single relaxed load while the registry is disarmed, so the hot
/// paths (engine windows, block decode, frame I/O) pay nothing
/// measurable until somebody asks for telemetry.  Arming is
/// programmatic (`arm()`, done by the serve daemon and the `--trace`
/// CLIs) or via the `CAL_METRICS` environment variable:
///
///   CAL_METRICS=on    arm at first instrumentation hit
///   CAL_METRICS=off   kill switch: arm() becomes a no-op for the
///                     whole process, instrumentation stays disarmed
///
/// Snapshots are deterministic: instruments sorted by name, values
/// rendered with a stable format (`render_text` is Prometheus-style
/// text exposition), so two snapshots of identical state are
/// byte-identical.
///
/// Instrument handles returned by counter()/gauge()/histogram() are
/// stable for the life of the process; `reset()` zeroes values but
/// never invalidates a handle, so the `static` caching in the macros
/// below stays sound.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cal::obs::metrics {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset_value() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset_value() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram: power-of-two buckets in
/// microseconds (<1us, <2us, ... <16.8s) plus an overflow bucket, with
/// total count and nanosecond sum for mean recovery.  Fixed buckets
/// keep record_ns() allocation-free and the rendering deterministic.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 25;  ///< 2^0 .. 2^24 us, then +Inf

  void record_ns(std::uint64_t ns) noexcept {
    const std::uint64_t us = ns / 1000;
    std::size_t bucket = 0;
    while (bucket < kBuckets && us >= (std::uint64_t{1} << bucket)) ++bucket;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum_ns() const noexcept {
    return sum_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset_value() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets + 1]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Disarmed fast path: one relaxed load (after the one-time lazy
/// CAL_METRICS read, itself guarded by an acquire load).
bool enabled() noexcept;

/// Arms the registry process-wide.  No-op when CAL_METRICS=off.
void arm();
/// Disarms; instruments keep their values until reset().
void disarm();
/// True when CAL_METRICS=off pinned the registry disarmed for good.
bool kill_switch() noexcept;

/// Registry lookup-or-create; the returned reference is stable for the
/// process lifetime (instruments are never destroyed, only zeroed).
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Zeroes every registered instrument's value (handles stay valid).
void reset();

/// Deterministic snapshot: every list sorted by instrument name.
struct Snapshot {
  struct HistogramValue {
    std::string name;
    std::uint64_t buckets[Histogram::kBuckets + 1];
    std::uint64_t count;
    std::uint64_t sum_ns;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramValue> histograms;
};
Snapshot snapshot();

/// Prometheus-style text exposition of a snapshot.  Dotted registry
/// names map to `cal_` + underscores (engine.windows ->
/// cal_engine_windows); ordering and formatting are deterministic.
std::string render_text(const Snapshot& snap);
std::string render_text();  ///< render_text(snapshot())

/// RAII latency timer feeding a Histogram; pass nullptr to disarm.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) noexcept : h_(h) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (h_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      h_->record_ns(static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace cal::obs::metrics

#ifndef CAL_OBS_CONCAT
#define CAL_OBS_CONCAT_INNER(a, b) a##b
#define CAL_OBS_CONCAT(a, b) CAL_OBS_CONCAT_INNER(a, b)
#endif

/// Bumps counter `name` by `n` when armed; one relaxed load otherwise.
/// `name` must be a string literal (it seeds a function-local static on
/// the first armed hit, so the registry map is walked at most once per
/// instrumentation site).
#define CAL_COUNT(name, n)                                                   \
  do {                                                                       \
    if (::cal::obs::metrics::enabled()) {                                    \
      static ::cal::obs::metrics::Counter& CAL_OBS_CONCAT(cal_obs_counter_,  \
                                                          __LINE__) =        \
          ::cal::obs::metrics::counter(name);                                \
      CAL_OBS_CONCAT(cal_obs_counter_, __LINE__)                             \
          .add(static_cast<std::uint64_t>(n));                               \
    }                                                                        \
  } while (0)

/// Sets gauge `name` to `v` when armed.
#define CAL_GAUGE_SET(name, v)                                               \
  do {                                                                       \
    if (::cal::obs::metrics::enabled()) {                                    \
      static ::cal::obs::metrics::Gauge& CAL_OBS_CONCAT(cal_obs_gauge_,      \
                                                        __LINE__) =          \
          ::cal::obs::metrics::gauge(name);                                  \
      CAL_OBS_CONCAT(cal_obs_gauge_, __LINE__)                               \
          .set(static_cast<std::int64_t>(v));                                \
    }                                                                        \
  } while (0)

/// RAII-times the enclosing scope into histogram `name` when armed;
/// one relaxed load + a null ScopedTimer otherwise.
#define CAL_TIME_SCOPE(name)                                                 \
  ::cal::obs::metrics::ScopedTimer CAL_OBS_CONCAT(cal_obs_timer_, __LINE__)( \
      ::cal::obs::metrics::enabled()                                         \
          ? [] {                                                             \
              static ::cal::obs::metrics::Histogram& h =                     \
                  ::cal::obs::metrics::histogram(name);                      \
              return &h;                                                     \
            }()                                                              \
          : nullptr)
