#pragma once

/// Lightweight span tracing: RAII `Span` objects record into per-thread
/// lock-free ring buffers, drained on demand into Chrome trace-event
/// JSON (the `{"traceEvents":[...]}` format Perfetto and
/// chrome://tracing load directly).
///
/// Discipline matches obs::metrics: a disarmed Span constructor is one
/// relaxed load and no allocation — a thread's buffer is only created
/// on its first *armed* record.  Arming is programmatic (`start()`,
/// wired to the CLIs' `--trace <path>` flag) or via the environment:
///
///   CAL_TRACE=out.json   arm at first hit and flush to out.json at
///                        process exit
///
/// Buffers are bounded (kCapacity events per thread); once full, new
/// events are dropped and counted rather than overwriting published
/// slots, so the flusher never races a wrapping writer.  Each slot is
/// written by its owning thread and then published with a release
/// store; the flusher acquire-loads the publish mark before reading,
/// which is the whole synchronization story (ThreadSanitizer-clean by
/// construction).
///
/// Thread names: `set_thread_name` tags the calling thread (the
/// `core::WorkerPool` names its workers `<pool>/<index>` through this)
/// and the flusher emits Chrome `thread_name` metadata events so
/// Perfetto's track labels match the pool topology.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace cal::obs::trace {

/// Events each thread can buffer before dropping (24 B/event).
inline constexpr std::size_t kCapacity = 1 << 16;

/// Disarmed fast path: one relaxed load (after lazy CAL_TRACE read).
bool enabled() noexcept;

void start();  ///< arm tracing process-wide
void stop();   ///< disarm; buffered events stay flushable

/// Names the calling thread for trace output.  Cheap and always safe
/// to call, armed or not; the name sticks for the thread's lifetime.
void set_thread_name(const std::string& name);

/// Records one complete span on the calling thread's ring buffer.
/// `name` must be a string literal (the pointer is stored, not copied).
void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns);

/// Nanoseconds since the process's trace epoch (steady clock).
std::uint64_t now_ns() noexcept;

/// Drains every thread's unflushed events into Chrome trace-event
/// JSON.  Incremental: a second flush emits only events recorded since
/// the first.  Thread metadata (names, ids) is re-emitted every flush
/// so each output file stands alone.
void flush_json(std::ostream& out);
void flush_json_file(const std::string& path);

/// Events dropped so far because a thread's buffer filled up.
std::uint64_t dropped();

/// RAII span: measures construction-to-destruction and records it on
/// the owning thread's buffer.  Armed-ness is latched at construction
/// so a span open across a stop() still closes cleanly.
class Span {
 public:
  explicit Span(const char* name) noexcept : name_(name) {
    if (enabled()) {
      armed_ = true;
      start_ns_ = now_ns();
    }
  }
  ~Span() {
    if (armed_) record(name_, start_ns_, now_ns() - start_ns_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

}  // namespace cal::obs::trace

#ifndef CAL_OBS_CONCAT
#define CAL_OBS_CONCAT_INNER(a, b) a##b
#define CAL_OBS_CONCAT(a, b) CAL_OBS_CONCAT_INNER(a, b)
#endif

/// Traces the enclosing scope as a complete span named `name`.
#define CAL_SPAN(name) \
  ::cal::obs::trace::Span CAL_OBS_CONCAT(cal_obs_span_, __LINE__)(name)
