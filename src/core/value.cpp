#include "core/value.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <functional>
#include <stdexcept>

namespace cal {

ValueKind Value::kind() const noexcept {
  switch (data_.index()) {
    case 0: return ValueKind::kInt;
    case 1: return ValueKind::kReal;
    default: return ValueKind::kString;
  }
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const auto* r = std::get_if<double>(&data_)) {
    return static_cast<std::int64_t>(*r);
  }
  throw std::runtime_error("Value: string '" + std::get<std::string>(data_) +
                           "' used as integer");
}

double Value::as_real() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  if (const auto* r = std::get_if<double>(&data_)) return *r;
  throw std::runtime_error("Value: string '" + std::get<std::string>(data_) +
                           "' used as real");
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  throw std::runtime_error("Value: numeric value used as string");
}

std::string Value::to_string() const {
  switch (kind()) {
    case ValueKind::kInt:
      return std::to_string(std::get<std::int64_t>(data_));
    case ValueKind::kReal: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", std::get<double>(data_));
      return buf;
    }
    case ValueKind::kString:
      return std::get<std::string>(data_);
  }
  return {};
}

Value Value::parse(const std::string& text) {
  if (text.empty()) return Value(std::string{});
  // Integer?
  {
    std::int64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec == std::errc{} && ptr == text.data() + text.size()) return Value(v);
  }
  // Real?
  {
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec == std::errc{} && ptr == text.data() + text.size()) return Value(v);
  }
  return Value(text);
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) {
    // Allow int/real cross-comparison for convenience in tests and joins.
    if (a.kind() != ValueKind::kString && b.kind() != ValueKind::kString) {
      return a.as_real() == b.as_real();
    }
    return false;
  }
  return a.data_ == b.data_;
}

std::size_t Value::hash() const noexcept {
  if (const auto* s = std::get_if<std::string>(&data_)) {
    return std::hash<std::string>{}(*s);
  }
  // Numeric: int and real that compare equal must hash equal.  Hash the
  // double view; every int64 representable as double hashes consistently,
  // and group-by keys mixing the two kinds for the same level are rare
  // enough that collisions from the cast are harmless (equality rechecks).
  double d = 0.0;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    d = static_cast<double>(*i);
  } else {
    d = std::get<double>(data_);
  }
  if (d == 0.0) d = 0.0;  // collapse -0.0 and +0.0 (they compare equal)
  return std::hash<double>{}(d);
}

bool operator<(const Value& a, const Value& b) {
  const bool a_num = a.kind() != ValueKind::kString;
  const bool b_num = b.kind() != ValueKind::kString;
  if (a_num && b_num) return a.as_real() < b.as_real();
  if (a_num != b_num) return a_num;  // numbers sort before strings
  return a.as_string() < b.as_string();
}

}  // namespace cal
