#include "core/fault.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <map>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>

namespace cal::core::fault {

namespace {

struct Point {
  Action action = Action::kNone;
  std::uint64_t after = 1;
  unsigned delay_ms = 0;
  std::uint64_t hits = 0;
  bool armed = false;
};

/// Function-local statics so the registry is usable during static init
/// (a test fixture arming in a global constructor must not race the
/// registry's own construction).
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, Point>& registry() {
  static std::map<std::string, Point> r;
  return r;
}

/// Armed-point count; the disarmed fast path is one relaxed load.
std::atomic<std::size_t> g_armed{0};
std::atomic<bool> g_env_loaded{false};
std::once_flag g_env_once;

Action parse_action_name(const std::string& name, const std::string& spec) {
  if (name == "crash") return Action::kCrash;
  if (name == "error") return Action::kError;
  if (name == "short_write") return Action::kShortWrite;
  if (name == "enospc") return Action::kEnospc;
  if (name == "delay") return Action::kDelay;
  throw std::invalid_argument("fault spec '" + spec + "': unknown action '" +
                              name + "'");
}

std::uint64_t parse_count(const std::string& text, const std::string& spec,
                          const char* what) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("fault spec '" + spec + "': " + what +
                                " is not a non-negative integer");
  }
  return std::stoull(text);
}

/// Locked arming core shared by arm() and the env loader (which must
/// not re-enter the public API from inside its call_once).
void arm_locked(const std::string& point, Action action, std::uint64_t after,
                unsigned delay_ms) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  Point& p = registry()[point];
  if (!p.armed && action != Action::kNone) {
    g_armed.fetch_add(1, std::memory_order_relaxed);
  }
  if (p.armed && action == Action::kNone) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
  p.action = action;
  p.after = after == 0 ? 1 : after;
  p.delay_ms = delay_ms;
  p.hits = 0;
  p.armed = action != Action::kNone;
}

/// Parses one `point=action[:MS][@N]` entry.
void apply_entry(const std::string& entry, const std::string& spec) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("fault spec '" + spec +
                                "': expected point=action entries");
  }
  const std::string point = entry.substr(0, eq);
  std::string rhs = entry.substr(eq + 1);
  std::uint64_t after = 1;
  if (const std::size_t at = rhs.find('@'); at != std::string::npos) {
    after = parse_count(rhs.substr(at + 1), spec, "@N trigger");
    rhs.erase(at);
  }
  unsigned delay_ms = 0;
  if (const std::size_t colon = rhs.find(':'); colon != std::string::npos) {
    delay_ms = static_cast<unsigned>(
        parse_count(rhs.substr(colon + 1), spec, ":MS delay"));
    rhs.erase(colon);
  }
  const Action action = parse_action_name(rhs, spec);
  if (delay_ms != 0 && action != Action::kDelay) {
    throw std::invalid_argument("fault spec '" + spec +
                                "': only delay takes a :MS argument");
  }
  arm_locked(point, action, after, delay_ms);
}

void apply_spec(const std::string& spec) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    std::size_t from = begin, to = end;
    while (from < to && spec[from] == ' ') ++from;
    while (to > from && spec[to - 1] == ' ') --to;
    if (to > from) apply_entry(spec.substr(from, to - from), spec);
    begin = end + 1;
  }
}

/// Loads CAL_FAULTS once; malformed env specs abort loudly (silently
/// ignoring an operator's injection request would fake test coverage).
void ensure_env_loaded() {
  if (g_env_loaded.load(std::memory_order_acquire)) return;
  std::call_once(g_env_once, [] {
    if (const char* env = std::getenv("CAL_FAULTS"); env != nullptr && *env) {
      apply_spec(env);
    }
    g_env_loaded.store(true, std::memory_order_release);
  });
}

[[noreturn]] void die() {
  // SIGKILL: the process vanishes without unwinding or flushing --
  // exactly the crash the coordinator must recover from.
  std::raise(SIGKILL);
  std::abort();  // unreachable; SIGKILL cannot be caught or ignored
}

struct Decision {
  Action action = Action::kNone;
  unsigned delay_ms = 0;
};

/// Records the hit and returns the action to execute (kNone below the
/// @N threshold or when the point is unarmed).
Decision decide(const char* point) {
  ensure_env_loaded();
  if (g_armed.load(std::memory_order_relaxed) == 0) return {};
  std::lock_guard<std::mutex> lock(registry_mutex());
  Point& p = registry()[point];
  ++p.hits;
  if (!p.armed || p.hits < p.after) return {};
  return {p.action, p.delay_ms};
}

[[noreturn]] void throw_injected(const char* point, Action action) {
  if (action == Action::kEnospc) {
    throw std::runtime_error(std::string("injected fault at '") + point +
                             "': No space left on device");
  }
  if (action == Action::kShortWrite) {
    throw std::runtime_error(std::string("injected fault at '") + point +
                             "': short write");
  }
  throw std::runtime_error(std::string("injected fault at '") + point +
                           "': I/O error");
}

}  // namespace

bool compiled_in() noexcept {
#if defined(CALIPERS_FAULT_INJECTION)
  return true;
#else
  return false;
#endif
}

void arm(const std::string& point, Action action, std::uint64_t after,
         unsigned delay_ms) {
  ensure_env_loaded();
  arm_locked(point, action, after, delay_ms);
}

void arm_spec(const std::string& spec) {
  ensure_env_loaded();
  apply_spec(spec);
}

void disarm(const std::string& point) {
  ensure_env_loaded();
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(point);
  if (it != registry().end() && it->second.armed) {
    it->second.armed = false;
    it->second.action = Action::kNone;
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void reset() {
  ensure_env_loaded();
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::size_t armed = 0;
  for (const auto& [name, p] : registry()) armed += p.armed ? 1 : 0;
  g_armed.fetch_sub(armed, std::memory_order_relaxed);
  registry().clear();
}

std::uint64_t hits(const std::string& point) {
  ensure_env_loaded();
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(point);
  return it == registry().end() ? 0 : it->second.hits;
}

void trip(const char* point) {
  const Decision d = decide(point);
  switch (d.action) {
    case Action::kNone:
      return;
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
      return;
    case Action::kCrash:
      die();
    case Action::kError:
    case Action::kShortWrite:  // no write to shorten at a control seam
    case Action::kEnospc:
      throw_injected(point, d.action);
  }
}

void checked_write(const char* point, std::ostream& out, const char* data,
                   std::size_t size) {
  const Decision d = decide(point);
  switch (d.action) {
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
      [[fallthrough]];
    case Action::kNone:
      out.write(data, static_cast<std::streamsize>(size));
      return;
    case Action::kCrash:
    case Action::kShortWrite:
      // Tear the write: half the bytes reach the file, so the frame on
      // disk is genuinely torn -- what bbx_fsck must cope with.
      out.write(data, static_cast<std::streamsize>(size / 2));
      out.flush();
      if (d.action == Action::kCrash) die();
      throw_injected(point, d.action);
    case Action::kError:
    case Action::kEnospc:
      // The write fails outright: nothing reaches the stream.
      throw_injected(point, d.action);
  }
}

}  // namespace cal::core::fault
