#pragma once
// Experimental factors (stage 1 of the methodology).
//
// The paper's Figure 13 groups the factors that govern a memory benchmark
// into categories (experiment plan, operating system, memory allocation,
// architecture, compilation, kernel).  A Factor names one such knob and
// describes how its values are produced:
//
//  * fixed levels   -- an explicit list (e.g. stride in {1,2,4,8}), crossed
//                      full-factorially with every other fixed factor;
//  * sampled values -- drawn per-run from a distribution, most importantly
//                      the log-uniform size distribution of Eq. (1), which
//                      avoids the power-of-two bias pitfall (P2).

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/value.hpp"

namespace cal {

/// Fig. 13 cause-and-effect grouping; carried as documentation metadata in
/// serialized plans so an analyst can see which knobs were controlled.
enum class FactorCategory {
  kExperimentPlan,   // sequence order, repetitions, cycles/size/stride
  kOperatingSystem,  // scheduling priority, CPU frequency, pinning, dedication
  kMemoryAllocation, // element type, allocation technique
  kArchitecture,     // machine selection (Intel, ARM, ...)
  kCompilation,      // optimization, loop unrolling
  kKernel,           // kernel shape parameters
  kOther,
};

std::string to_string(FactorCategory category);
FactorCategory factor_category_from_string(const std::string& text);

enum class FactorKind {
  kLevels,         // explicit levels, crossed factorially
  kLogUniformInt,  // per-run sample: Eq. (1), rounded to integer
  kLogUniformReal, // per-run sample: Eq. (1)
};

/// One experimental factor.
class Factor {
 public:
  /// Fixed-levels factor.  Requires at least one level.
  static Factor levels(std::string name, std::vector<Value> levels,
                       FactorCategory category = FactorCategory::kOther);

  /// Sampled integer factor: each run draws 10^Unif(log10 a, log10 b),
  /// rounded.  Requires 0 < a <= b.
  static Factor log_uniform_int(std::string name, std::int64_t a,
                                std::int64_t b,
                                FactorCategory category = FactorCategory::kOther);

  /// Sampled real factor over [a, b], log-uniform.  Requires 0 < a <= b.
  static Factor log_uniform_real(std::string name, double a, double b,
                                 FactorCategory category = FactorCategory::kOther);

  const std::string& name() const noexcept { return name_; }
  FactorKind kind() const noexcept { return kind_; }
  FactorCategory category() const noexcept { return category_; }

  /// Levels of a kLevels factor (empty for sampled factors).
  const std::vector<Value>& level_values() const noexcept { return levels_; }

  /// Number of distinct design cells this factor contributes
  /// (1 for sampled factors: sampling happens per run, not per cell).
  std::size_t cell_count() const noexcept;

  /// Draws a value for a sampled factor; returns the level for index
  /// `cell` for a fixed-levels factor (cell < cell_count()).
  Value value_for_cell(std::size_t cell, Rng& rng) const;

  double sample_lo() const noexcept { return lo_; }
  double sample_hi() const noexcept { return hi_; }

 private:
  Factor(std::string name, FactorKind kind, FactorCategory category)
      : name_(std::move(name)), kind_(kind), category_(category) {}

  std::string name_;
  FactorKind kind_;
  FactorCategory category_;
  std::vector<Value> levels_;
  double lo_ = 0.0;
  double hi_ = 0.0;
};

}  // namespace cal
