#include "core/farm.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace cal::core {

namespace {

using Clock = std::chrono::steady_clock;

struct Pending {
  PlanPartition partition;
  std::size_t attempts = 0;   ///< dispatches already made
  Clock::time_point ready{};  ///< backoff deadline for the next dispatch
};

void note(const FarmOptions& options, const std::string& message) {
  if (options.log) options.log(message);
}

unsigned backoff_ms(const FarmOptions& options, std::size_t retry) {
  // retry is 1-based; cap both the shift and the product.
  const unsigned shift = static_cast<unsigned>(std::min<std::size_t>(retry, 16) - 1);
  const unsigned long ms =
      static_cast<unsigned long>(options.backoff_base_ms) << shift;
  return static_cast<unsigned>(
      std::min<unsigned long>(ms, options.backoff_cap_ms));
}

/// The forked child's entire life: run the job, report, vanish.  _exit
/// (not exit) so the parent's atexit/static-destructor state is never
/// run twice.
[[noreturn]] void child_main(
    const PlanPartition& part,
    const std::function<void(const PlanPartition&)>& job) {
  try {
    job(part);
    _exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "partition %zu: %s\n", part.index, e.what());
    _exit(1);
  } catch (...) {
    std::fprintf(stderr, "partition %zu: unknown error\n", part.index);
    _exit(1);
  }
}

}  // namespace

FarmResult run_partition_farm(
    const std::vector<PlanPartition>& partitions,
    const std::function<void(const PlanPartition&)>& job,
    const std::function<bool(const PlanPartition&)>& completed,
    const FarmOptions& options) {
  if (options.attempt_budget == 0) {
    throw std::invalid_argument("run_partition_farm: attempt_budget must be >= 1");
  }
  const std::size_t max_parallel = options.max_parallel == 0
                                       ? std::max<std::size_t>(partitions.size(), 1)
                                       : options.max_parallel;

  FarmResult result;
  std::deque<Pending> pending;
  for (const PlanPartition& part : partitions) {
    // Restartability: work a previous coordinator already finished is
    // recognized, not redone.
    if (completed(part)) {
      note(options, "partition " + std::to_string(part.index) +
                        " already complete, skipping");
      continue;
    }
    pending.push_back({part, 0, Clock::now()});
  }

  std::map<pid_t, Pending> running;
  const auto settle = [&](Pending p, int exit_code) {
    FarmAttempt attempt;
    attempt.partition = p.partition.index;
    attempt.attempt = p.attempts;
    attempt.exit_code = exit_code;
    attempt.completed = exit_code == 0 && completed(p.partition);
    result.attempts.push_back(attempt);
    if (attempt.completed) return;
    const std::string why =
        exit_code < 0 ? "killed by signal " + std::to_string(-exit_code)
        : exit_code > 0
            ? "exited with code " + std::to_string(exit_code)
            : "exited clean but its output is missing";
    if (p.attempts >= options.attempt_budget) {
      note(options, "partition " + std::to_string(p.partition.index) +
                        " attempt " + std::to_string(p.attempts) + " " + why +
                        "; budget spent, giving up");
      result.incomplete.push_back(p.partition);
      CAL_COUNT("farm.exhausted", 1);
      return;
    }
    const unsigned delay = backoff_ms(options, p.attempts);
    note(options, "partition " + std::to_string(p.partition.index) +
                      " attempt " + std::to_string(p.attempts) + " " + why +
                      "; retrying in " + std::to_string(delay) + " ms");
    ++result.redispatches;
    CAL_COUNT("farm.retries", 1);
    p.ready = Clock::now() + std::chrono::milliseconds(delay);
    pending.push_back(std::move(p));
  };

  while (!pending.empty() || !running.empty()) {
    // Dispatch everything whose backoff has elapsed, up to the cap.
    const auto now = Clock::now();
    for (std::size_t i = 0; i < pending.size() && running.size() < max_parallel;) {
      if (pending[i].ready > now) {
        ++i;
        continue;
      }
      Pending p = std::move(pending[i]);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      ++p.attempts;
      const pid_t pid = fork();
      if (pid < 0) {
        // Treat a failed fork like a failed attempt: backoff and retry.
        settle(std::move(p), 127);
        continue;
      }
      if (pid == 0) child_main(p.partition, job);
      CAL_COUNT("farm.dispatches", 1);
      note(options, "partition " + std::to_string(p.partition.index) +
                        " attempt " + std::to_string(p.attempts) +
                        " dispatched (pid " + std::to_string(pid) + ")");
      running.emplace(pid, std::move(p));
    }

    if (!running.empty()) {
      int status = 0;
      const pid_t pid = waitpid(-1, &status, 0);
      if (pid < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("run_partition_farm: waitpid: ") +
                                 std::strerror(errno));
      }
      const auto it = running.find(pid);
      if (it == running.end()) continue;  // not one of ours
      Pending p = std::move(it->second);
      running.erase(it);
      const int exit_code = WIFSIGNALED(status) ? -WTERMSIG(status)
                            : WIFEXITED(status) ? WEXITSTATUS(status)
                                                : 126;
      settle(std::move(p), exit_code);
    } else if (!pending.empty()) {
      // Everything left is in backoff; sleep until the earliest deadline.
      auto earliest = pending.front().ready;
      for (const Pending& p : pending) earliest = std::min(earliest, p.ready);
      std::this_thread::sleep_until(earliest);
    }
  }

  result.complete = result.incomplete.empty();
  return result;
}

}  // namespace cal::core
