#pragma once
// Raw measurement records (stage 2 output).
//
// The engine appends one RawRecord per executed run: the factor values,
// every measured metric, the execution sequence index, and the simulated
// wall-clock timestamp at which the measurement started.  Nothing is
// aggregated on the fly -- "we avoid doing any on-the-fly aggregation and
// keep all information, delaying the analysis" (paper, Section V).  The
// sequence index and timestamp are what make temporal diagnostics like
// Fig. 11 (right) possible at all.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/value.hpp"

namespace cal {

struct RawRecord {
  std::size_t sequence = 0;      ///< execution order (0-based)
  std::size_t cell_index = 0;    ///< factorial cell of the plan
  std::size_t replicate = 0;     ///< replicate within the cell
  double timestamp_s = 0.0;      ///< simulated wall-clock start time
  std::vector<Value> factors;    ///< factor values, plan factor order
  std::vector<double> metrics;   ///< measured values, table metric order
};

/// The raw-result CSV header row: bookkeeping columns, then factor names,
/// then metric names.  Shared by RawTable::write_csv and the streaming
/// io::CsvStreamSink so both produce byte-identical archives.
void write_raw_csv_header(std::ostream& out,
                          const std::vector<std::string>& factor_names,
                          const std::vector<std::string>& metric_names);

/// One raw-result CSV data row, formatted exactly as RawTable::write_csv
/// would (Value round-trip precision for reals).
void write_raw_csv_record(std::ostream& out, const RawRecord& record);

/// Columnar-with-row-records table of raw measurements.
class RawTable {
 public:
  RawTable(std::vector<std::string> factor_names,
           std::vector<std::string> metric_names);

  const std::vector<std::string>& factor_names() const noexcept {
    return factor_names_;
  }
  const std::vector<std::string>& metric_names() const noexcept {
    return metric_names_;
  }
  const std::vector<RawRecord>& records() const noexcept { return records_; }

  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  /// Pre-sizes the record store; the campaign engine knows the plan size
  /// up front, so the hot ingest path never reallocates.
  void reserve(std::size_t n) { records_.reserve(records_.size() + n); }

  /// Appends a record; widths must match the declared column names.
  void append(RawRecord record);

  /// Moves a whole batch in (per-worker shard merge).  Validates every
  /// width first so a mid-batch mismatch cannot leave the table ragged.
  void append_batch(std::vector<RawRecord> batch);

  std::size_t factor_index(const std::string& name) const;
  std::size_t metric_index(const std::string& name) const;

  /// Column extraction for analysis: factor as real values.
  std::vector<double> factor_column_real(const std::string& name) const;

  /// Column extraction: metric values.
  std::vector<double> metric_column(const std::string& name) const;

  /// Rows where `factor == value` (Value equality).
  RawTable filter(const std::string& factor, const Value& value) const;

  /// Rows selected by a predicate over records.
  template <typename Pred>
  RawTable filter_records(Pred&& pred) const {
    RawTable out(factor_names_, metric_names_);
    for (const auto& r : records_) {
      if (pred(r)) out.append(r);
    }
    return out;
  }

  /// Distinct values of a factor, sorted (Value ordering).
  std::vector<Value> distinct(const std::string& factor) const;

  void write_csv(std::ostream& out) const;
  static RawTable read_csv(std::istream& in, std::size_t n_factors);

 private:
  std::vector<std::string> factor_names_;
  std::vector<std::string> metric_names_;
  std::vector<RawRecord> records_;
};

}  // namespace cal
