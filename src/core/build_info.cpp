#include "core/build_info.hpp"

#include "simd/dispatch.hpp"

namespace cal::core {

std::string build_version() {
#ifdef CALIPERS_GIT_DESCRIBE
  return CALIPERS_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string build_compiler() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string build_type() {
#if defined(CALIPERS_BUILD_TYPE)
  return CALIPERS_BUILD_TYPE;
#elif defined(NDEBUG)
  return "Release";
#else
  return "Debug";
#endif
}

std::string build_info_line(const std::string& tool) {
  return tool + " " + build_version() + " (" + build_compiler() + ", " +
         build_type() + ", simd=" + simd::to_string(simd::active_level()) +
         ")";
}

}  // namespace cal::core
