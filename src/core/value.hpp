#pragma once
// A tagged value for factor levels and measurement outputs.
//
// Experiment plans and raw-result tables are serialized to CSV so they can
// be inspected, archived and re-analyzed (the "keep all information" rule
// of the methodology).  Value carries enough type information to round-trip
// through text without loss of intent: integers stay integers (message
// sizes, strides), reals keep full precision, and categorical levels
// (e.g. operation names) stay strings.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace cal {

enum class ValueKind { kInt, kReal, kString };

class Value {
 public:
  Value() : data_(std::int64_t{0}) {}
  Value(std::int64_t v) : data_(v) {}           // NOLINT(google-explicit-constructor)
  Value(int v) : data_(std::int64_t{v}) {}      // NOLINT(google-explicit-constructor)
  Value(std::size_t v) : data_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(double v) : data_(v) {}                 // NOLINT(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {} // NOLINT(google-explicit-constructor)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT

  ValueKind kind() const noexcept;

  bool is_int() const noexcept { return kind() == ValueKind::kInt; }
  bool is_real() const noexcept { return kind() == ValueKind::kReal; }
  bool is_string() const noexcept { return kind() == ValueKind::kString; }

  /// Integer view.  Reals are truncated toward zero; strings throw.
  std::int64_t as_int() const;

  /// Real view.  Integers widen; strings throw.
  double as_real() const;

  /// String view of categorical values; numeric values throw
  /// (use to_string() for display formatting instead).
  const std::string& as_string() const;

  /// Display / CSV form.  Reals use round-trip precision.
  std::string to_string() const;

  /// Parses a CSV cell: integer if it looks like one, then real,
  /// otherwise string.
  static Value parse(const std::string& text);

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Ordering used for group-by keys: by kind, then by content.
  friend bool operator<(const Value& a, const Value& b);

  /// Hash consistent with operator== (which compares int and real values
  /// numerically): numeric values hash through their double view, strings
  /// through std::hash<std::string>.
  std::size_t hash() const noexcept;

 private:
  std::variant<std::int64_t, double, std::string> data_;
};

/// Hasher for Value and std::vector<Value> group-by keys.
struct ValueHash {
  std::size_t operator()(const Value& v) const noexcept { return v.hash(); }

  std::size_t operator()(const std::vector<Value>& key) const noexcept {
    // FNV-style combine: order-sensitive, cheap, no allocation.
    std::size_t h = 0xcbf29ce484222325ULL;
    for (const Value& v : key) {
      h ^= v.hash();
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

}  // namespace cal
