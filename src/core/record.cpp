#include "core/record.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "io/csv.hpp"

namespace cal {

RawTable::RawTable(std::vector<std::string> factor_names,
                   std::vector<std::string> metric_names)
    : factor_names_(std::move(factor_names)),
      metric_names_(std::move(metric_names)) {}

void RawTable::append(RawRecord record) {
  if (record.factors.size() != factor_names_.size() ||
      record.metrics.size() != metric_names_.size()) {
    throw std::invalid_argument("RawTable: record width mismatch");
  }
  records_.push_back(std::move(record));
}

void RawTable::append_batch(std::vector<RawRecord> batch) {
  for (const auto& record : batch) {
    if (record.factors.size() != factor_names_.size() ||
        record.metrics.size() != metric_names_.size()) {
      throw std::invalid_argument("RawTable: record width mismatch");
    }
  }
  records_.reserve(records_.size() + batch.size());
  records_.insert(records_.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
}

std::size_t RawTable::factor_index(const std::string& name) const {
  for (std::size_t i = 0; i < factor_names_.size(); ++i) {
    if (factor_names_[i] == name) return i;
  }
  throw std::out_of_range("RawTable: unknown factor '" + name + "'");
}

std::size_t RawTable::metric_index(const std::string& name) const {
  for (std::size_t i = 0; i < metric_names_.size(); ++i) {
    if (metric_names_[i] == name) return i;
  }
  throw std::out_of_range("RawTable: unknown metric '" + name + "'");
}

std::vector<double> RawTable::factor_column_real(
    const std::string& name) const {
  const std::size_t idx = factor_index(name);
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.factors[idx].as_real());
  return out;
}

std::vector<double> RawTable::metric_column(const std::string& name) const {
  const std::size_t idx = metric_index(name);
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.metrics[idx]);
  return out;
}

RawTable RawTable::filter(const std::string& factor, const Value& value) const {
  const std::size_t idx = factor_index(factor);
  RawTable out(factor_names_, metric_names_);
  for (const auto& r : records_) {
    if (r.factors[idx] == value) out.append(r);
  }
  return out;
}

std::vector<Value> RawTable::distinct(const std::string& factor) const {
  const std::size_t idx = factor_index(factor);
  std::vector<Value> values;
  for (const auto& r : records_) {
    const auto& v = r.factors[idx];
    if (std::find(values.begin(), values.end(), v) == values.end()) {
      values.push_back(v);
    }
  }
  std::sort(values.begin(), values.end());
  return values;
}

void write_raw_csv_header(std::ostream& out,
                          const std::vector<std::string>& factor_names,
                          const std::vector<std::string>& metric_names) {
  std::vector<std::string> header = {"sequence", "cell", "replicate",
                                     "timestamp_s"};
  header.insert(header.end(), factor_names.begin(), factor_names.end());
  header.insert(header.end(), metric_names.begin(), metric_names.end());
  io::write_csv_row(out, header);
}

void write_raw_csv_record(std::ostream& out, const RawRecord& record) {
  std::vector<std::string> row = {std::to_string(record.sequence),
                                  std::to_string(record.cell_index),
                                  std::to_string(record.replicate),
                                  Value(record.timestamp_s).to_string()};
  for (const auto& v : record.factors) row.push_back(v.to_string());
  for (const auto m : record.metrics) row.push_back(Value(m).to_string());
  io::write_csv_row(out, row);
}

void RawTable::write_csv(std::ostream& out) const {
  write_raw_csv_header(out, factor_names_, metric_names_);
  for (const auto& r : records_) write_raw_csv_record(out, r);
}

RawTable RawTable::read_csv(std::istream& in, std::size_t n_factors) {
  const auto rows = io::read_csv(in);
  if (rows.empty()) throw std::runtime_error("RawTable: empty CSV");
  const auto& header = rows.front();
  constexpr std::size_t kBookkeeping = 4;
  if (header.size() < kBookkeeping + n_factors) {
    throw std::runtime_error("RawTable: header too narrow");
  }
  std::vector<std::string> factor_names(
      header.begin() + kBookkeeping,
      header.begin() + kBookkeeping + static_cast<std::ptrdiff_t>(n_factors));
  std::vector<std::string> metric_names(
      header.begin() + kBookkeeping + static_cast<std::ptrdiff_t>(n_factors),
      header.end());
  RawTable table(std::move(factor_names), std::move(metric_names));
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != header.size()) {
      throw std::runtime_error("RawTable: ragged CSV row");
    }
    RawRecord rec;
    rec.sequence = static_cast<std::size_t>(std::stoull(row[0]));
    rec.cell_index = static_cast<std::size_t>(std::stoull(row[1]));
    rec.replicate = static_cast<std::size_t>(std::stoull(row[2]));
    rec.timestamp_s = std::stod(row[3]);
    for (std::size_t c = 0; c < n_factors; ++c) {
      rec.factors.push_back(Value::parse(row[kBookkeeping + c]));
    }
    for (std::size_t c = kBookkeeping + n_factors; c < row.size(); ++c) {
      rec.metrics.push_back(std::stod(row[c]));
    }
    table.append(std::move(rec));
  }
  return table;
}

}  // namespace cal
