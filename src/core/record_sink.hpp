#pragma once
// Record sinks: where the engine delivers raw records (stage 2 output).
//
// The paper's methodology forbids on-the-fly aggregation -- every raw
// record must survive to the offline analysis.  At campaign scale that
// rule collides with memory: a million-run campaign cannot hold its whole
// RawTable resident.  RecordSink decouples *producing* records (the
// engine's plan-order merge path) from *retaining* them: the engine hands
// the sink plan-ordered batches, and the sink decides whether they
// accumulate in memory (TableSink) or stream to disk
// (io::CsvStreamSink).  Either way the byte stream of the archived CSV is
// identical -- determinism is a property of the producer, not the sink.

#include <optional>
#include <string>
#include <vector>

#include "core/record.hpp"

namespace cal {

/// Consumer of plan-ordered raw-record batches.
///
/// Contract (enforced by the engine):
///   * begin() is called exactly once, before any batch;
///   * consume() receives records in plan order, each batch at most the
///     engine's Options::sink_batch records, and is called from the
///     engine's calling thread only (sinks need no locking against the
///     worker pool);
///   * close() is called exactly once: after the last batch on success
///     (where it must surface any deferred I/O error by throwing), or
///     during unwinding when the campaign fails (where anything close()
///     throws is swallowed so the measurement error propagates) -- a
///     failed campaign's archive is finalized but may be truncated.
class RecordSink {
 public:
  virtual ~RecordSink() = default;

  /// Announces the campaign's columns.  `expected_records` is the plan
  /// size -- a capacity hint, not a promise (a failing measurement ends
  /// the campaign early).
  virtual void begin(const std::vector<std::string>& factor_names,
                     const std::vector<std::string>& metric_names,
                     std::size_t expected_records) = 0;

  /// Takes ownership of one plan-ordered batch.
  virtual void consume(std::vector<RawRecord> batch) = 0;

  /// Flushes and finalizes; throws if any record could not be persisted.
  virtual void close() = 0;
};

/// In-memory sink: accumulates every record into a RawTable (the
/// pre-streaming engine behavior, still the right choice when the
/// analysis happens in-process right after the campaign).
class TableSink final : public RecordSink {
 public:
  void begin(const std::vector<std::string>& factor_names,
             const std::vector<std::string>& metric_names,
             std::size_t expected_records) override;
  void consume(std::vector<RawRecord> batch) override;
  void close() override {}

  /// The accumulated table; valid after begin().
  const RawTable& table() const;

  /// Moves the table out (the sink is then spent).
  RawTable take();

 private:
  std::optional<RawTable> table_;
};

}  // namespace cal
