#pragma once
// Deterministic random number generation for experiment design.
//
// Every source of randomness in Calipers -- design randomization, sampled
// factor values, simulator noise -- flows through cal::Rng so that a single
// seed makes an entire experimental campaign exactly reproducible.  This is
// the reproducibility requirement of Stanisic et al. (RepPar'17), Section V.
//
// The generator is xoshiro256** seeded via SplitMix64; it is fast, has
// 256 bits of state, and passes BigCrush.  We do not use std::mt19937
// because its distributions are not portable across standard libraries,
// which would make "same seed, same design" hold only per-platform.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace cal {

/// Deterministic, portable pseudo-random generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform real in [0, 1).
  double uniform() noexcept;

  /// Uniform real in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in the inclusive range [lo, hi].  Unbiased
  /// (rejection sampling on the top of the range).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Log-uniform real: 10^X with X ~ Unif(log10(a), log10(b)).
  /// This is Equation (1) of the paper, used to draw message sizes so
  /// that every decade of the size axis is sampled equally densely.
  /// Requires 0 < a <= b.
  double log_uniform(double a, double b) noexcept;

  /// Log-uniform integer in [a, b]: rounds the real draw and clamps.
  std::int64_t log_uniform_int(std::int64_t a, std::int64_t b) noexcept;

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double sd) noexcept;

  /// Log-normal multiplicative noise: exp(normal(0, sigma)).
  /// Multiplying a duration by this models heavier-than-Gaussian right
  /// tails typical of timing measurements.
  double lognormal_factor(double sigma) noexcept;

  /// Bernoulli trial.
  bool bernoulli(double p) noexcept;

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate) noexcept;

  /// Fisher-Yates shuffle of an index span.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    shuffle(std::span<T>(values));
  }

  /// Picks a uniformly random element index for a container of size n > 0.
  std::size_t pick_index(std::size_t n) noexcept;

  /// Derives an independent child generator.  Used to give each
  /// measurement (or each simulator component) its own stream so that
  /// adding noise to one component does not perturb the draws of another.
  Rng split() noexcept;

  /// Advances the stream by `n` draws (equivalent to n next_u64() calls).
  void discard(std::uint64_t n) noexcept;

  /// The child that the i-th sequential split() (0-based) would produce,
  /// without advancing this generator.  This is what lets a parallel
  /// engine hand run i its exact sequential-execution random stream no
  /// matter which worker executes it, or in which order.  O(i); combine
  /// with jump() when indexing far into the stream.
  Rng split_at(std::uint64_t i) const noexcept;

  /// The canonical xoshiro256** jump: advances the state by 2^128 draws
  /// in O(1) (the reference long_jump, 2^192, is a different primitive).
  /// Child streams split off after distinct jump counts never overlap.
  void jump() noexcept;

  /// A randomly permuted identity vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cal
