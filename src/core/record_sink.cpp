#include "core/record_sink.hpp"

#include <stdexcept>
#include <utility>

namespace cal {

void TableSink::begin(const std::vector<std::string>& factor_names,
                      const std::vector<std::string>& metric_names,
                      std::size_t expected_records) {
  if (table_.has_value()) {
    throw std::logic_error("TableSink: begin() called twice");
  }
  table_.emplace(factor_names, metric_names);
  table_->reserve(expected_records);
}

void TableSink::consume(std::vector<RawRecord> batch) {
  if (!table_.has_value()) {
    throw std::logic_error("TableSink: consume() before begin()");
  }
  table_->append_batch(std::move(batch));
}

const RawTable& TableSink::table() const {
  if (!table_.has_value()) {
    throw std::logic_error("TableSink: table() before begin()");
  }
  return *table_;
}

RawTable TableSink::take() {
  if (!table_.has_value()) {
    throw std::logic_error("TableSink: take() before begin()");
  }
  RawTable out = std::move(*table_);
  table_.reset();
  return out;
}

}  // namespace cal
