#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

namespace cal {
namespace {

/// Child seeds for every planned run, in execution order.  The i-th seed
/// is exactly what the i-th sequential engine_rng.split() would have used,
/// so Rng(seeds[i]) == engine_rng.split_at(i): per-run streams do not
/// depend on which worker executes the run, or when.
std::vector<std::uint64_t> presplit_seeds(std::uint64_t engine_seed,
                                          std::size_t n) {
  Rng engine_rng(engine_seed);
  std::vector<std::uint64_t> seeds(n);
  for (auto& seed : seeds) seed = engine_rng.next_u64();
  return seeds;
}

}  // namespace

Engine::Engine(std::vector<std::string> metric_names, Options options)
    : metric_names_(std::move(metric_names)), options_(options) {
  if (metric_names_.empty()) {
    throw std::invalid_argument("Engine: no metric names");
  }
}

std::size_t Engine::resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::vector<MeasureResult> Engine::execute_sharded(
    const std::vector<PlannedRun>& order, bool sequence_is_position,
    const MeasureFactory& factory, std::size_t threads) const {
  const std::size_t n = order.size();
  const std::vector<std::uint64_t> seeds = presplit_seeds(options_.seed, n);

  // Build every worker's measurement callable up front, on this thread,
  // so factories need no synchronization.
  std::vector<MeasureFn> measures;
  measures.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) measures.push_back(factory(w));

  std::vector<MeasureResult> results(n);
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      try {
        // Round-robin sharding: deterministic (no work stealing), and
        // interleaved assignment spreads expensive neighbouring runs --
        // randomized plans have no cost locality anyway.
        for (std::size_t j = w; j < n; j += threads) {
          Rng run_rng(seeds[j]);
          MeasureContext ctx{options_.start_time_s,
                             sequence_is_position ? j : order[j].run_index,
                             &run_rng, w};
          MeasureResult result = measures[w](order[j], ctx);
          if (result.metrics.size() != metric_names_.size()) {
            throw std::runtime_error("Engine: measurement width mismatch");
          }
          results[j] = std::move(result);
        }
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (auto& worker : pool) worker.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

RawTable Engine::run(const Plan& plan, const MeasureFactory& factory) const {
  std::vector<std::string> factor_names;
  factor_names.reserve(plan.factors().size());
  for (const auto& f : plan.factors()) factor_names.push_back(f.name());

  RawTable table(std::move(factor_names), metric_names_);
  table.reserve(plan.size());
  const std::vector<PlannedRun>& order = plan.runs();
  const std::size_t threads =
      std::min(resolve_threads(options_.threads),
               std::max<std::size_t>(order.size(), 1));

  if (threads <= 1) {
    // Sequential: the simulated clock threads through the measurement, so
    // time-dependent simulations see true timestamps.
    const MeasureFn measure = factory(0);
    Rng engine_rng(options_.seed);
    double now = options_.start_time_s;
    for (const auto& planned : order) {
      Rng run_rng = engine_rng.split();
      MeasureContext ctx{now, planned.run_index, &run_rng, 0};
      MeasureResult result = measure(planned, ctx);
      if (result.metrics.size() != metric_names_.size()) {
        throw std::runtime_error("Engine: measurement width mismatch");
      }
      RawRecord rec;
      rec.sequence = planned.run_index;
      rec.cell_index = planned.cell_index;
      rec.replicate = planned.replicate;
      rec.timestamp_s = now;
      rec.factors = planned.values;
      rec.metrics = std::move(result.metrics);
      table.append(std::move(rec));
      now += result.elapsed_s + options_.inter_run_gap_s;
    }
    return table;
  }

  std::vector<MeasureResult> results =
      execute_sharded(order, /*sequence_is_position=*/false, factory, threads);

  // Merge in plan order, rebuilding the sequential clock from the
  // returned durations -- timestamps come out identical to a sequential
  // execution of the same (stationary) measurement.
  std::vector<RawRecord> batch;
  batch.reserve(order.size());
  double now = options_.start_time_s;
  for (std::size_t j = 0; j < order.size(); ++j) {
    const PlannedRun& planned = order[j];
    RawRecord rec;
    rec.sequence = planned.run_index;
    rec.cell_index = planned.cell_index;
    rec.replicate = planned.replicate;
    rec.timestamp_s = now;
    rec.factors = planned.values;
    rec.metrics = std::move(results[j].metrics);
    batch.push_back(std::move(rec));
    now += results[j].elapsed_s + options_.inter_run_gap_s;
  }
  table.append_batch(std::move(batch));
  return table;
}

RawTable Engine::run(const Plan& plan, const MeasureFn& measure) const {
  return run(plan, MeasureFactory([&measure](std::size_t) { return measure; }));
}

OpaqueSummary Engine::run_opaque(const Plan& plan,
                                 const MeasureFactory& factory) const {
  // Sequential sweep: sort by cell index, replicates back-to-back --
  // exactly the order of the pseudo-code in the paper's Fig. 2.
  std::vector<PlannedRun> order = plan.runs();
  std::stable_sort(order.begin(), order.end(),
                   [](const PlannedRun& a, const PlannedRun& b) {
                     return a.cell_index < b.cell_index;
                   });

  OpaqueSummary summary;
  for (const auto& f : plan.factors()) {
    summary.factor_names.push_back(f.name());
  }
  summary.metric_names = metric_names_;

  const std::size_t threads =
      std::min(resolve_threads(options_.threads),
               std::max<std::size_t>(order.size(), 1));

  std::vector<MeasureResult> results;
  if (threads <= 1) {
    const MeasureFn measure = factory(0);
    Rng engine_rng(options_.seed);
    double now = options_.start_time_s;
    results.reserve(order.size());
    for (std::size_t j = 0; j < order.size(); ++j) {
      Rng run_rng = engine_rng.split();
      MeasureContext ctx{now, j, &run_rng, 0};
      MeasureResult result = measure(order[j], ctx);
      if (result.metrics.size() != metric_names_.size()) {
        throw std::runtime_error("Engine: measurement width mismatch");
      }
      now += result.elapsed_s + options_.inter_run_gap_s;
      results.push_back(std::move(result));
    }
  } else {
    results = execute_sharded(order, /*sequence_is_position=*/true, factory,
                              threads);
  }

  // Online Welford accumulators, indexed directly by the plan's cell
  // index -- no per-record scan over key vectors.  A cell's reported
  // factor values are those of its first run in sweep order (for sampled
  // factors they vary within the cell; level factors are constant).
  struct Acc {
    std::vector<Value> factors;
    std::size_t n = 0;
    std::vector<double> mean;
    std::vector<double> m2;
  };
  std::size_t n_cells = 0;
  for (const auto& planned : order) {
    n_cells = std::max(n_cells, planned.cell_index + 1);
  }
  std::vector<Acc> accs(n_cells);

  for (std::size_t j = 0; j < order.size(); ++j) {
    Acc& acc = accs[order[j].cell_index];
    if (acc.n == 0) {
      acc.factors = order[j].values;
      acc.mean.assign(metric_names_.size(), 0.0);
      acc.m2.assign(metric_names_.size(), 0.0);
    }
    acc.n += 1;
    const std::vector<double>& metrics = results[j].metrics;
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      const double x = metrics[m];
      const double delta = x - acc.mean[m];
      acc.mean[m] += delta / static_cast<double>(acc.n);
      acc.m2[m] += delta * (x - acc.mean[m]);
    }
  }

  summary.cells.reserve(n_cells);
  for (auto& acc : accs) {
    if (acc.n == 0) continue;  // cell had no runs
    OpaqueCellSummary cell;
    cell.factors = std::move(acc.factors);
    cell.n = acc.n;
    cell.mean = std::move(acc.mean);
    cell.sd.resize(acc.m2.size());
    for (std::size_t m = 0; m < acc.m2.size(); ++m) {
      cell.sd[m] =
          acc.n > 1 ? std::sqrt(acc.m2[m] / static_cast<double>(acc.n - 1))
                    : 0.0;
    }
    summary.cells.push_back(std::move(cell));
  }
  return summary;
}

OpaqueSummary Engine::run_opaque(const Plan& plan,
                                 const MeasureFn& measure) const {
  return run_opaque(plan,
                    MeasureFactory([&measure](std::size_t) { return measure; }));
}

}  // namespace cal
