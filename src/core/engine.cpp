#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/fault.hpp"
#include "io/csv.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cal {
namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_between(SteadyClock::time_point a,
                       SteadyClock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Folds one finished window into the attached collector.
void note_window(WindowStats* stats, std::size_t runs, double wall_s) {
  if (stats == nullptr) return;
  if (stats->windows == 0 || wall_s < stats->min_window_s) {
    stats->min_window_s = wall_s;
  }
  stats->max_window_s = std::max(stats->max_window_s, wall_s);
  stats->windows += 1;
  stats->runs += runs;
  stats->wall_s += wall_s;
}

/// Draws the next `n` child seeds from the engine stream.  Drawing them
/// through one long-lived Rng keeps the global invariant of the parallel
/// contract: the k-th planned run's seed is exactly what the k-th
/// sequential engine_rng.split() would have used, so per-run streams do
/// not depend on which worker executes the run, when, or in which
/// execution window.
void draw_seeds(Rng& engine_rng, std::size_t n,
                std::vector<std::uint64_t>& seeds) {
  seeds.resize(n);
  for (auto& seed : seeds) seed = engine_rng.next_u64();
}

/// Builds every worker's measurement callable up front, on the calling
/// thread, so factories need no synchronization.  Shared by both
/// parallel entry points (run-with-sink and run_opaque) so the
/// factory-call ordering that determinism relies on has one definition.
std::vector<MeasureFn> build_measures(const MeasureFactory& factory,
                                      std::size_t threads) {
  std::vector<MeasureFn> measures;
  measures.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) measures.push_back(factory(w));
  return measures;
}

/// Assembles the record for `planned`, stamped with timestamp `t`,
/// appends it to `batch`, and advances the accumulated clock by the
/// run's duration plus the inter-run gap.  The one definition both the
/// sequential path and the parallel window merge share -- the
/// bit-identical contract depends on these never drifting apart.
void append_record(const PlannedRun& planned, MeasureResult&& result, double t,
                   double& now, double gap, std::vector<RawRecord>& batch) {
  RawRecord rec;
  rec.sequence = planned.run_index;
  rec.cell_index = planned.cell_index;
  rec.replicate = planned.replicate;
  rec.timestamp_s = t;
  rec.factors = planned.values;
  rec.metrics = std::move(result.metrics);
  batch.push_back(std::move(rec));
  now += result.elapsed_s + gap;
}

/// Streamed per-cell Welford accumulators: the opaque path's whole
/// resident state.  Measurements are merged strictly in sweep order
/// (sequentially, or window by window in parallel mode), so the sums --
/// and therefore the summaries -- are bit-identical no matter how the
/// campaign was executed.
class WelfordCells {
 public:
  WelfordCells(std::size_t n_cells, std::size_t n_metrics)
      : n_metrics_(n_metrics), cells_(n_cells) {}

  /// Folds one measurement into its cell.  A cell's reported factor
  /// values are those of its first run in sweep order (for sampled
  /// factors they vary within the cell; level factors are constant).
  void add(const PlannedRun& run, const std::vector<double>& metrics) {
    Acc& acc = cells_[run.cell_index];
    if (acc.n == 0) {
      acc.factors = run.values;
      acc.mean.assign(n_metrics_, 0.0);
      acc.m2.assign(n_metrics_, 0.0);
    }
    acc.n += 1;
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      const double x = metrics[m];
      const double delta = x - acc.mean[m];
      acc.mean[m] += delta / static_cast<double>(acc.n);
      acc.m2[m] += delta * (x - acc.mean[m]);
    }
  }

  /// Finalizes into summary cells (sample sd, n-1; 0 for single-sample
  /// cells), skipping cells that had no runs.  The accumulators are
  /// spent afterwards.
  std::vector<OpaqueCellSummary> finish() {
    std::vector<OpaqueCellSummary> out;
    out.reserve(cells_.size());
    for (auto& acc : cells_) {
      if (acc.n == 0) continue;
      OpaqueCellSummary cell;
      cell.factors = std::move(acc.factors);
      cell.n = acc.n;
      cell.mean = std::move(acc.mean);
      cell.sd.resize(acc.m2.size());
      for (std::size_t m = 0; m < acc.m2.size(); ++m) {
        cell.sd[m] =
            acc.n > 1 ? std::sqrt(acc.m2[m] / static_cast<double>(acc.n - 1))
                      : 0.0;
      }
      out.push_back(std::move(cell));
    }
    return out;
  }

 private:
  struct Acc {
    std::vector<Value> factors;
    std::size_t n = 0;
    std::vector<double> mean;
    std::vector<double> m2;
  };
  std::size_t n_metrics_;
  std::vector<Acc> cells_;
};

/// The pool a parallel call executes its windows on.  Three modes:
/// a shared long-lived pool (Options::pool), a pool owned for the
/// duration of the call (Options::reuse_pool, the default), or -- the
/// legacy behavior kept for latency A/B benches -- a fresh pool per
/// window.
class PoolLease {
 public:
  PoolLease(const Engine::Options& options, std::size_t threads)
      : threads_(threads) {
    if (options.pool) {
      pool_ = options.pool.get();
    } else if (options.reuse_pool) {
      owned_ = std::make_unique<core::WorkerPool>(threads, "cal-engine");
      pool_ = owned_.get();
    }
  }

  /// The pool for the next window; in spawn-per-window mode the
  /// previous window's pool is joined and torn down *before* the new
  /// one spawns, so thread counts never momentarily double and each
  /// window's timing charges its own spawn + join.
  core::WorkerPool& next_window_pool() {
    if (pool_ != nullptr) return *pool_;
    owned_.reset();
    owned_ = std::make_unique<core::WorkerPool>(threads_, "cal-window");
    return *owned_;
  }

 private:
  std::size_t threads_;
  core::WorkerPool* pool_ = nullptr;
  std::unique_ptr<core::WorkerPool> owned_;
};

/// Closes `sink` during unwinding if the campaign failed before the
/// engine could close it normally; errors from this best-effort close
/// are swallowed so the measurement error stays the one that propagates.
class SinkCloser {
 public:
  explicit SinkCloser(RecordSink& sink) : sink_(sink) {}
  ~SinkCloser() {
    if (!disarmed_) {
      try {
        sink_.close();
      } catch (...) {
      }
    }
  }
  void disarm() noexcept { disarmed_ = true; }

 private:
  RecordSink& sink_;
  bool disarmed_ = false;
};

}  // namespace

void OpaqueSummary::write_csv(std::ostream& out) const {
  std::vector<std::string> header = factor_names;
  header.push_back("n");
  for (const auto& m : metric_names) {
    header.push_back("mean_" + m);
    header.push_back("sd_" + m);
  }
  io::write_csv_row(out, header);
  for (const auto& cell : cells) {
    std::vector<std::string> row;
    row.reserve(header.size());
    for (const auto& f : cell.factors) row.push_back(f.to_string());
    row.push_back(std::to_string(cell.n));
    for (std::size_t m = 0; m < metric_names.size(); ++m) {
      row.push_back(Value(cell.mean[m]).to_string());
      row.push_back(Value(cell.sd[m]).to_string());
    }
    io::write_csv_row(out, row);
  }
}

Engine::Engine(std::vector<std::string> metric_names, Options options)
    : metric_names_(std::move(metric_names)), options_(options) {
  if (metric_names_.empty()) {
    throw std::invalid_argument("Engine: no metric names");
  }
}

std::size_t Engine::resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t Engine::parallelism(std::size_t plan_runs) const {
  // Clamp to the plan size either way: a 6-run campaign on a 32-worker
  // shared pool should build 6 factory replicas, not 32.
  const std::size_t requested = options_.pool
                                    ? options_.pool->size()
                                    : resolve_threads(options_.threads);
  return std::min(requested, std::max<std::size_t>(plan_runs, 1));
}

void Engine::execute_window(core::WorkerPool& pool,
                            const std::vector<PlannedRun>& order,
                            std::size_t begin, std::size_t end,
                            const std::vector<std::uint64_t>& seeds,
                            bool sequence_is_position,
                            const std::vector<MeasureFn>& measures,
                            std::vector<MeasureResult>& results,
                            std::vector<double>* worker_busy_s) const {
  results.resize(end - begin);
  CAL_SPAN("engine.window");
  // Round-robin sharding (worker w takes window positions w, w + width,
  // ...): deterministic -- no work stealing -- and interleaved assignment
  // spreads expensive neighbouring runs; randomized plans have no cost
  // locality anyway.  The shard width is the measure count, which may be
  // below a shared pool's worker count for small plans.  On failure the
  // lowest-position exception (plan order) propagates and the pool
  // stays reusable.
  pool.run_indexed(end - begin, [&](std::size_t w, std::size_t k) {
    const std::size_t j = begin + k;
    Rng run_rng(seeds[k]);
    MeasureContext ctx{options_.start_time_s,
                       sequence_is_position ? j : order[j].run_index, &run_rng,
                       w};
    const bool timed = worker_busy_s != nullptr;
    const auto t0 = timed ? SteadyClock::now() : SteadyClock::time_point{};
    MeasureResult result = measures[w](order[j], ctx);
    if (timed) (*worker_busy_s)[w] += seconds_between(t0, SteadyClock::now());
    if (result.metrics.size() != metric_names_.size()) {
      throw std::runtime_error("Engine: measurement width mismatch");
    }
    results[k] = std::move(result);
  }, measures.size());
}

void Engine::run(const Plan& plan, const MeasureFactory& factory,
                 RecordSink& sink) const {
  run_range(plan, factory, sink, 0, plan.size());
}

void Engine::run_range(const Plan& plan, const MeasureFactory& factory,
                       RecordSink& sink, std::size_t first,
                       std::size_t count) const {
  const std::vector<PlannedRun>& order = plan.runs();
  if (first > order.size() || count > order.size() - first) {
    throw std::out_of_range("Engine::run_range: range exceeds plan size " +
                            std::to_string(order.size()));
  }
  if (first != 0 && options_.clock != Clock::kIndexed) {
    throw std::invalid_argument(
        "Engine::run_range: first > 0 requires Options::clock == "
        "Clock::kIndexed (accumulated timestamps depend on every preceding "
        "run's duration)");
  }
  if (!options_.faults.empty()) core::fault::arm_spec(options_.faults);

  const bool indexed = options_.clock == Clock::kIndexed;
  const double gap = options_.inter_run_gap_s;
  // Under the indexed clock a record's timestamp is a pure function of
  // its plan index; under the accumulated clock it is the threaded
  // simulated `now`.  One lambda so both execution paths agree.
  const auto stamp = [&](double now, std::size_t run_index) {
    return indexed
               ? options_.start_time_s + static_cast<double>(run_index) * gap
               : now;
  };

  std::vector<std::string> factor_names;
  factor_names.reserve(plan.factors().size());
  for (const auto& f : plan.factors()) factor_names.push_back(f.name());
  sink.begin(factor_names, metric_names_, count);
  SinkCloser closer(sink);  // finalizes the sink even on failure

  const std::size_t n = count;
  const std::size_t batch_size = std::max<std::size_t>(options_.sink_batch, 1);
  const std::size_t threads = parallelism(n);

  WindowStats* const stats = options_.window_stats.get();
  if (stats != nullptr) {
    *stats = WindowStats{};
    stats->threads = threads;
  }

  if (threads <= 1) {
    // Sequential: the simulated clock threads through the measurement, so
    // time-dependent simulations see true timestamps (accumulated clock;
    // the indexed clock's timestamps are position-determined either way).
    const MeasureFn measure = factory(0);
    Rng engine_rng(options_.seed);
    engine_rng.discard(first);  // runs [0, first) each drew one seed
    double now = options_.start_time_s;
    std::vector<RawRecord> batch;
    batch.reserve(std::min(batch_size, n));
    auto window_t0 = SteadyClock::now();
    const auto flush = [&] {
      const std::size_t runs = batch.size();
      CAL_COUNT("engine.windows", 1);
      CAL_COUNT("engine.runs", runs);
      CAL_FAULT_POINT("engine.window");
      {
        CAL_SPAN("engine.sink");
        CAL_TIME_SCOPE("engine.sink_seconds");
        sink.consume(std::move(batch));
      }
      note_window(stats, runs, seconds_between(window_t0, SteadyClock::now()));
      window_t0 = SteadyClock::now();
    };
    for (std::size_t j = first; j < first + count; ++j) {
      const PlannedRun& planned = order[j];
      Rng run_rng = engine_rng.split();
      const double t = stamp(now, planned.run_index);
      MeasureContext ctx{t, planned.run_index, &run_rng, 0};
      const auto t0 =
          stats != nullptr ? SteadyClock::now() : SteadyClock::time_point{};
      MeasureResult result = measure(planned, ctx);
      if (stats != nullptr) {
        stats->busy_s += seconds_between(t0, SteadyClock::now());
      }
      if (result.metrics.size() != metric_names_.size()) {
        throw std::runtime_error("Engine: measurement width mismatch");
      }
      append_record(planned, std::move(result), t, now, gap, batch);
      if (batch.size() >= batch_size) {
        flush();
        batch.clear();
        batch.reserve(std::min(batch_size, n));
      }
    }
    if (!batch.empty()) flush();
    closer.disarm();
    sink.close();
    return;
  }

  // Parallel: execute the range window by window (one window = one sink
  // batch) on the persistent pool, merging each window in plan order and
  // rebuilding the sequential clock from the returned durations across
  // windows.  The resident state is one window of results + one batch of
  // records, no matter how large the campaign is.
  const std::vector<MeasureFn> measures = build_measures(factory, threads);
  PoolLease lease(options_, threads);
  Rng engine_rng(options_.seed);
  engine_rng.discard(first);
  double now = options_.start_time_s;
  std::vector<std::uint64_t> seeds;
  std::vector<MeasureResult> results;
  std::vector<double> worker_busy_s(stats != nullptr ? threads : 0, 0.0);
  for (std::size_t begin = first; begin < first + n; begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, first + n);
    draw_seeds(engine_rng, end - begin, seeds);
    const auto window_t0 = SteadyClock::now();
    {
      CAL_TIME_SCOPE("engine.window_seconds");
      execute_window(lease.next_window_pool(), order, begin, end, seeds,
                     /*sequence_is_position=*/false, measures, results,
                     stats != nullptr ? &worker_busy_s : nullptr);
    }
    std::vector<RawRecord> batch;
    batch.reserve(end - begin);
    for (std::size_t j = begin; j < end; ++j) {
      const double t = stamp(now, order[j].run_index);
      append_record(order[j], std::move(results[j - begin]), t, now, gap,
                    batch);
    }
    CAL_COUNT("engine.windows", 1);
    CAL_COUNT("engine.runs", end - begin);
    CAL_FAULT_POINT("engine.window");
    {
      CAL_SPAN("engine.sink");
      CAL_TIME_SCOPE("engine.sink_seconds");
      sink.consume(std::move(batch));
    }
    note_window(stats, end - begin,
                seconds_between(window_t0, SteadyClock::now()));
  }
  if (stats != nullptr) {
    for (const double busy : worker_busy_s) stats->busy_s += busy;
  }
  closer.disarm();
  sink.close();
}

void Engine::run(const Plan& plan, const MeasureFn& measure,
                 RecordSink& sink) const {
  run(plan, MeasureFactory([&measure](std::size_t) { return measure; }), sink);
}

RawTable Engine::run(const Plan& plan, const MeasureFactory& factory) const {
  TableSink sink;
  run(plan, factory, sink);
  return sink.take();
}

RawTable Engine::run(const Plan& plan, const MeasureFn& measure) const {
  return run(plan, MeasureFactory([&measure](std::size_t) { return measure; }));
}

OpaqueSummary Engine::run_opaque(const Plan& plan,
                                 const MeasureFactory& factory) const {
  if (!options_.faults.empty()) core::fault::arm_spec(options_.faults);
  // Sequential sweep: sort by cell index, replicates back-to-back --
  // exactly the order of the pseudo-code in the paper's Fig. 2.
  std::vector<PlannedRun> order = plan.runs();
  std::stable_sort(order.begin(), order.end(),
                   [](const PlannedRun& a, const PlannedRun& b) {
                     return a.cell_index < b.cell_index;
                   });

  OpaqueSummary summary;
  for (const auto& f : plan.factors()) {
    summary.factor_names.push_back(f.name());
  }
  summary.metric_names = metric_names_;

  // Online Welford accumulators, indexed directly by the plan's cell
  // index -- no per-record scan over key vectors, and no MeasureResult
  // buffering: each measurement folds in as soon as it is merged.
  std::size_t n_cells = 0;
  for (const auto& planned : order) {
    n_cells = std::max(n_cells, planned.cell_index + 1);
  }
  WelfordCells cells(n_cells, metric_names_.size());

  const std::size_t threads = parallelism(order.size());
  if (threads <= 1) {
    const MeasureFn measure = factory(0);
    Rng engine_rng(options_.seed);
    double now = options_.start_time_s;
    for (std::size_t j = 0; j < order.size(); ++j) {
      Rng run_rng = engine_rng.split();
      MeasureContext ctx{now, j, &run_rng, 0};
      MeasureResult result = measure(order[j], ctx);
      if (result.metrics.size() != metric_names_.size()) {
        throw std::runtime_error("Engine: measurement width mismatch");
      }
      now += result.elapsed_s + options_.inter_run_gap_s;
      cells.add(order[j], result.metrics);
    }
  } else {
    // Parallel: execute the sweep in bounded windows on the persistent
    // pool and merge each window's staged results into the shared
    // accumulators in plan order -- the summation order is identical to
    // the sequential loop above, so the summaries are bit-identical at
    // any thread count and any window size.
    const std::size_t window = std::max<std::size_t>(
        options_.opaque_window != 0 ? options_.opaque_window
                                    : options_.sink_batch,
        1);
    const std::vector<MeasureFn> measures = build_measures(factory, threads);
    PoolLease lease(options_, threads);
    Rng engine_rng(options_.seed);
    std::vector<std::uint64_t> seeds;
    std::vector<MeasureResult> results;
    for (std::size_t begin = 0; begin < order.size(); begin += window) {
      const std::size_t end = std::min(begin + window, order.size());
      draw_seeds(engine_rng, end - begin, seeds);
      execute_window(lease.next_window_pool(), order, begin, end, seeds,
                     /*sequence_is_position=*/true, measures, results);
      for (std::size_t k = 0; k < end - begin; ++k) {
        cells.add(order[begin + k], results[k].metrics);
      }
    }
  }

  summary.cells = cells.finish();
  return summary;
}

OpaqueSummary Engine::run_opaque(const Plan& plan,
                                 const MeasureFn& measure) const {
  return run_opaque(plan,
                    MeasureFactory([&measure](std::size_t) { return measure; }));
}

}  // namespace cal
