#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cal {

Engine::Engine(std::vector<std::string> metric_names, Options options)
    : metric_names_(std::move(metric_names)), options_(options) {
  if (metric_names_.empty()) {
    throw std::invalid_argument("Engine: no metric names");
  }
}

RawTable Engine::run(const Plan& plan, const MeasureFn& measure) const {
  std::vector<std::string> factor_names;
  factor_names.reserve(plan.factors().size());
  for (const auto& f : plan.factors()) factor_names.push_back(f.name());

  RawTable table(std::move(factor_names), metric_names_);
  Rng engine_rng(options_.seed);
  double now = options_.start_time_s;

  for (const auto& planned : plan.runs()) {
    Rng run_rng = engine_rng.split();
    MeasureContext ctx{now, planned.run_index, &run_rng};
    MeasureResult result = measure(planned, ctx);
    if (result.metrics.size() != metric_names_.size()) {
      throw std::runtime_error("Engine: measurement width mismatch");
    }
    RawRecord rec;
    rec.sequence = planned.run_index;
    rec.cell_index = planned.cell_index;
    rec.replicate = planned.replicate;
    rec.timestamp_s = now;
    rec.factors = planned.values;
    rec.metrics = std::move(result.metrics);
    table.append(std::move(rec));
    now += result.elapsed_s + options_.inter_run_gap_s;
  }
  return table;
}

OpaqueSummary Engine::run_opaque(const Plan& plan,
                                 const MeasureFn& measure) const {
  // Sequential sweep: sort by cell index, replicates back-to-back --
  // exactly the order of the pseudo-code in the paper's Fig. 2.
  std::vector<PlannedRun> order = plan.runs();
  std::stable_sort(order.begin(), order.end(),
                   [](const PlannedRun& a, const PlannedRun& b) {
                     return a.cell_index < b.cell_index;
                   });

  OpaqueSummary summary;
  for (const auto& f : plan.factors()) {
    summary.factor_names.push_back(f.name());
  }
  summary.metric_names = metric_names_;

  Rng engine_rng(options_.seed);
  double now = options_.start_time_s;

  // Online Welford accumulators per cell.
  struct Acc {
    std::vector<Value> factors;
    std::size_t n = 0;
    std::vector<double> mean;
    std::vector<double> m2;
  };
  std::vector<Acc> accs;

  std::size_t sequence = 0;
  for (const auto& planned : order) {
    Rng run_rng = engine_rng.split();
    MeasureContext ctx{now, sequence, &run_rng};
    MeasureResult result = measure(planned, ctx);
    if (result.metrics.size() != metric_names_.size()) {
      throw std::runtime_error("Engine: measurement width mismatch");
    }
    now += result.elapsed_s + options_.inter_run_gap_s;
    ++sequence;

    Acc* acc = nullptr;
    for (auto& a : accs) {
      if (a.factors == planned.values) {
        acc = &a;
        break;
      }
    }
    if (acc == nullptr) {
      accs.push_back(Acc{planned.values, 0,
                         std::vector<double>(metric_names_.size(), 0.0),
                         std::vector<double>(metric_names_.size(), 0.0)});
      acc = &accs.back();
    }
    acc->n += 1;
    for (std::size_t m = 0; m < result.metrics.size(); ++m) {
      const double x = result.metrics[m];
      const double delta = x - acc->mean[m];
      acc->mean[m] += delta / static_cast<double>(acc->n);
      acc->m2[m] += delta * (x - acc->mean[m]);
    }
  }

  for (const auto& acc : accs) {
    OpaqueCellSummary cell;
    cell.factors = acc.factors;
    cell.n = acc.n;
    cell.mean = acc.mean;
    cell.sd.resize(acc.m2.size());
    for (std::size_t m = 0; m < acc.m2.size(); ++m) {
      cell.sd[m] =
          acc.n > 1 ? std::sqrt(acc.m2[m] / static_cast<double>(acc.n - 1))
                    : 0.0;
    }
    summary.cells.push_back(std::move(cell));
  }
  return summary;
}

}  // namespace cal
