#pragma once
// Persistent worker pool for deterministic campaign execution.
//
// The streaming engine executes a campaign as a sequence of bounded
// windows (one window per sink batch).  Spawning std::threads for every
// window makes per-window latency proportional to thread-creation cost,
// which dominates for small Engine::Options::sink_batch values.
// WorkerPool keeps one set of long-lived, named workers alive for as many
// windows -- or as many campaigns -- as the owner wants, replacing the
// per-window spawn/join with a condition-variable wake.
//
// Determinism is preserved by construction, exactly like the old
// spawn-per-window scheme:
//
//   * submit() assigns tasks round-robin (submission i of a
//     barrier-delimited batch goes to worker i % size(), and the cursor
//     resets at every barrier), so the task -> worker mapping never
//     depends on timing;
//   * run_indexed() shards an indexed window the way the engine always
//     has: worker w executes indices w, w + size(), ... in increasing
//     order, no work stealing;
//   * exceptions are captured per worker and rethrown from the caller
//     after the barrier -- barrier() rethrows the failure of the earliest
//     *submission*, run_indexed() the failure of the lowest *index*
//     (plan order).  Either way the pool itself stays healthy and
//     reusable: a failed window never poisons the next one.
//
// The pool is single-producer: submit()/barrier()/run_indexed() must be
// called from one thread at a time (the engine's merge thread).  Tasks
// themselves run concurrently on the workers.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cal::core {

class WorkerPool {
 public:
  /// A submitted task; receives the index of the worker executing it.
  using Task = std::function<void(std::size_t worker)>;
  /// An indexed window body for run_indexed().
  using IndexedTask = std::function<void(std::size_t worker,
                                         std::size_t index)>;

  /// Spawns `threads` workers (clamped to at least 1), named
  /// "<name>/<w>" where the platform supports thread names.
  explicit WorkerPool(std::size_t threads, std::string name = "calipers");

  /// Drains queued tasks, then joins every worker.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t size() const noexcept { return threads_.size(); }
  const std::string& name() const noexcept { return name_; }

  /// Enqueues `task` on the next worker in round-robin submission order
  /// (submission i since the last barrier goes to worker i % size()).
  void submit(Task task);

  /// Enqueues `task` on a specific worker.
  void submit_to(std::size_t worker, Task task);

  /// Blocks until every submitted task has finished.  If any task threw,
  /// rethrows the exception of the earliest submission (later failures
  /// are dropped); all captured failures are cleared either way, so the
  /// pool is immediately reusable.  Also resets the round-robin cursor.
  void barrier();

  /// Executes `count` indexed tasks sharded round-robin across the
  /// first `width` workers (worker w runs indices w, w + width, ... in
  /// increasing order; width = 0 or > size() means all workers) and
  /// waits for completion.  A worker stops its own shard at its first
  /// failure; other shards run to completion.  The exception of the
  /// lowest failing index -- plan order, for the engine -- is rethrown,
  /// and the pool stays reusable.  A width below size() lets a caller
  /// with fewer per-worker resources (e.g. simulator replicas) than the
  /// pool has workers keep its shard stride equal to its resource count.
  void run_indexed(std::size_t count, const IndexedTask& body,
                   std::size_t width = 0);

 private:
  struct Submission {
    std::uint64_t seq = 0;
    Task task;
  };
  struct Failure {
    std::uint64_t seq = 0;
    std::exception_ptr error;
  };

  void worker_loop(std::size_t w);

  std::string name_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for tasks / shutdown
  std::condition_variable idle_cv_;  ///< barrier waits for pending_ == 0
  std::vector<std::deque<Submission>> queues_;  ///< one per worker
  std::vector<Failure> failures_;
  std::size_t pending_ = 0;      ///< submitted, not yet finished
  std::uint64_t next_seq_ = 0;   ///< submission counter (for failure order)
  std::size_t next_worker_ = 0;  ///< round-robin cursor for submit()
  bool stop_ = false;
};

}  // namespace cal::core
