#include "core/factor.hpp"

#include <stdexcept>

namespace cal {

std::string to_string(FactorCategory category) {
  switch (category) {
    case FactorCategory::kExperimentPlan: return "experiment_plan";
    case FactorCategory::kOperatingSystem: return "operating_system";
    case FactorCategory::kMemoryAllocation: return "memory_allocation";
    case FactorCategory::kArchitecture: return "architecture";
    case FactorCategory::kCompilation: return "compilation";
    case FactorCategory::kKernel: return "kernel";
    case FactorCategory::kOther: return "other";
  }
  return "other";
}

FactorCategory factor_category_from_string(const std::string& text) {
  if (text == "experiment_plan") return FactorCategory::kExperimentPlan;
  if (text == "operating_system") return FactorCategory::kOperatingSystem;
  if (text == "memory_allocation") return FactorCategory::kMemoryAllocation;
  if (text == "architecture") return FactorCategory::kArchitecture;
  if (text == "compilation") return FactorCategory::kCompilation;
  if (text == "kernel") return FactorCategory::kKernel;
  return FactorCategory::kOther;
}

Factor Factor::levels(std::string name, std::vector<Value> levels,
                      FactorCategory category) {
  if (levels.empty()) {
    throw std::invalid_argument("Factor '" + name + "': no levels given");
  }
  Factor f(std::move(name), FactorKind::kLevels, category);
  f.levels_ = std::move(levels);
  return f;
}

Factor Factor::log_uniform_int(std::string name, std::int64_t a,
                               std::int64_t b, FactorCategory category) {
  if (a <= 0 || b < a) {
    throw std::invalid_argument("Factor '" + name +
                                "': log-uniform range requires 0 < a <= b");
  }
  Factor f(std::move(name), FactorKind::kLogUniformInt, category);
  f.lo_ = static_cast<double>(a);
  f.hi_ = static_cast<double>(b);
  return f;
}

Factor Factor::log_uniform_real(std::string name, double a, double b,
                                FactorCategory category) {
  if (a <= 0.0 || b < a) {
    throw std::invalid_argument("Factor '" + name +
                                "': log-uniform range requires 0 < a <= b");
  }
  Factor f(std::move(name), FactorKind::kLogUniformReal, category);
  f.lo_ = a;
  f.hi_ = b;
  return f;
}

std::size_t Factor::cell_count() const noexcept {
  return kind_ == FactorKind::kLevels ? levels_.size() : 1;
}

Value Factor::value_for_cell(std::size_t cell, Rng& rng) const {
  switch (kind_) {
    case FactorKind::kLevels:
      if (cell >= levels_.size()) {
        throw std::out_of_range("Factor '" + name_ + "': cell out of range");
      }
      return levels_[cell];
    case FactorKind::kLogUniformInt:
      return Value(rng.log_uniform_int(static_cast<std::int64_t>(lo_),
                                       static_cast<std::int64_t>(hi_)));
    case FactorKind::kLogUniformReal:
      return Value(rng.log_uniform(lo_, hi_));
  }
  throw std::logic_error("Factor: unknown kind");
}

}  // namespace cal
