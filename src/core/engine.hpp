#pragma once
// Measurement engine (stage 2 of the methodology).
//
// The engine is deliberately dumb: it reads the plan, executes each run in
// the prescribed order, stamps every result with its sequence index and
// simulated wall-clock time, and appends it to a RawTable.  All
// intelligence lives before (design) or after (analysis) this stage.
//
// A second entry point, run_opaque(), emulates how the benchmarks
// criticized by the paper behave: it ignores the plan's randomized order
// (sorting runs by cell, i.e. a sequential parameter sweep) and keeps only
// online mean/standard-deviation summaries per cell.  It exists so the
// ablation studies can quantify exactly what that style of tool loses.

#include <functional>
#include <string>
#include <vector>

#include "core/design.hpp"
#include "core/record.hpp"
#include "core/rng.hpp"

namespace cal {

/// Context handed to the measurement function for one run.
struct MeasureContext {
  double now_s = 0.0;        ///< simulated wall-clock time at run start
  std::size_t sequence = 0;  ///< execution order index
  Rng* rng = nullptr;        ///< per-run random stream (never null)
};

/// Result of one measurement.
struct MeasureResult {
  std::vector<double> metrics;  ///< aligned to Engine metric names
  double elapsed_s = 0.0;       ///< simulated duration; advances the clock
};

using MeasureFn =
    std::function<MeasureResult(const PlannedRun&, MeasureContext&)>;

/// Per-cell summary produced by the opaque execution mode.
struct OpaqueCellSummary {
  std::vector<Value> factors;
  std::size_t n = 0;
  std::vector<double> mean;  ///< per metric
  std::vector<double> sd;    ///< per metric (sample sd, n-1)
};

struct OpaqueSummary {
  std::vector<std::string> factor_names;
  std::vector<std::string> metric_names;
  std::vector<OpaqueCellSummary> cells;
};

class Engine {
 public:
  struct Options {
    /// Simulated dead time between consecutive measurements (loop
    /// overhead, logging, ...).  Keeps timestamps strictly increasing.
    double inter_run_gap_s = 50e-6;
    /// Seed for the engine's own stream; each run receives a split of it.
    std::uint64_t seed = 42;
    /// Initial simulated wall-clock value.
    double start_time_s = 0.0;
  };

  explicit Engine(std::vector<std::string> metric_names)
      : Engine(std::move(metric_names), Options{}) {}
  Engine(std::vector<std::string> metric_names, Options options);

  const std::vector<std::string>& metric_names() const noexcept {
    return metric_names_;
  }

  /// White-box mode: executes the plan in plan order, returns every raw
  /// record.
  RawTable run(const Plan& plan, const MeasureFn& measure) const;

  /// Opaque mode: sorts runs by cell index (sequential sweep), aggregates
  /// online, and throws the raw data away.  Returned summaries are all an
  /// opaque tool would have reported.
  OpaqueSummary run_opaque(const Plan& plan, const MeasureFn& measure) const;

 private:
  std::vector<std::string> metric_names_;
  Options options_;
};

}  // namespace cal
