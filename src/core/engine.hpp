#pragma once
// Measurement engine (stage 2 of the methodology).
//
// The engine is deliberately dumb: it reads the plan, executes each run in
// the prescribed order, stamps every result with its sequence index and
// simulated wall-clock time, and hands it to a RecordSink -- either an
// in-memory TableSink (the RawTable-returning overloads) or a streaming
// sink such as io::CsvStreamSink for campaigns too large to hold
// resident.  All intelligence lives before (design) or after (analysis)
// this stage.
//
// Campaign throughput: the engine can shard runs over a worker pool
// (Options::threads).  Determinism is preserved by construction:
//
//   * every run's random stream is pre-split from the engine seed in run
//     order (one engine-stream draw per run, exactly what the i-th
//     sequential Rng::split() -- equivalently Rng::split_at(i) -- would
//     have produced), so run i draws the exact same noise no matter
//     which worker executes it, or in which order;
//   * workers stage results into per-run slots and the merge rebuilds the
//     record batch -- and the simulated clock -- in plan order.
//
// The resulting RawTable is bit-identical to sequential execution at any
// thread count, provided the measurement is *stationary*: it must not
// derive metrics from MeasureContext::now_s (in parallel mode now_s is
// the campaign start time, and final timestamps are reconstructed during
// the merge).  Time-dependent simulations (DVFS governors, scheduler
// perturbation windows) should keep threads == 1.
//
// Parallel windows execute on a persistent core::WorkerPool: the pool is
// created once per run()/run_opaque() call (or shared across calls via
// Options::pool) and woken per window, so per-window latency is a
// condition-variable broadcast, not a thread spawn/join.
//
// A second entry point, run_opaque(), emulates how the benchmarks
// criticized by the paper behave: it ignores the plan's randomized order
// (sorting runs by cell, i.e. a sequential parameter sweep) and keeps only
// online mean/standard-deviation summaries per cell.  It exists so the
// ablation studies can quantify exactly what that style of tool loses.
// True to form, it aggregates *online*: measurements stream into per-cell
// Welford accumulators (sequentially, or window by window in plan order
// when parallel), so its resident state is one execution window of
// results plus the accumulators -- never the whole campaign.

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/design.hpp"
#include "core/record.hpp"
#include "core/record_sink.hpp"
#include "core/rng.hpp"
#include "core/worker_pool.hpp"

namespace cal {

/// How records get their timestamps.
///
///   kAccumulated -- the original model: the simulated clock advances by
///       each run's measured duration plus the inter-run gap, so run i's
///       timestamp depends on every preceding run.  Right for
///       time-dependent simulations; impossible to reproduce from a
///       plan slice alone.
///   kIndexed -- timestamp_s = start_time_s + run_index * inter_run_gap_s,
///       a pure function of the plan index.  This is the distributed-
///       campaign clock: machines executing different partitions share
///       no wall clock, and a partition must stamp its records without
///       knowing how long the rest of the plan took.  Sequence-vs-time
///       perturbation plots keep working (order is what they need).
///       Partitioned execution (Engine::run_range with first > 0)
///       requires it.
enum class Clock { kAccumulated, kIndexed };

/// Context handed to the measurement function for one run.
struct MeasureContext {
  double now_s = 0.0;        ///< simulated wall-clock time at run start
  std::size_t sequence = 0;  ///< execution order index
  Rng* rng = nullptr;        ///< per-run random stream (never null)
  std::size_t worker = 0;    ///< worker executing the run (0 if sequential)
};

/// Result of one measurement.
struct MeasureResult {
  std::vector<double> metrics;  ///< aligned to Engine metric names
  double elapsed_s = 0.0;       ///< simulated duration; advances the clock
};

using MeasureFn =
    std::function<MeasureResult(const PlannedRun&, MeasureContext&)>;

/// Builds one measurement callable per worker.  The engine invokes the
/// factory sequentially on the calling thread, once per worker, before
/// any measurement starts -- so the factory itself needs no locking, and
/// each worker can own private mutable state (e.g. a simulator replica).
using MeasureFactory = std::function<MeasureFn(std::size_t worker)>;

/// Execution telemetry for one run()/run_range() call: per-window
/// wall-clock and worker busy time, collected only when a collector is
/// attached (Options::window_stats -- Campaign attaches one so archived
/// bundles carry it).  A "window" is one sink batch: the unit the
/// parallel path schedules and merges.  Occupancy is measured busy time
/// over the pool's capacity for the measured wall time -- 1.0 means
/// every worker measured for the full window, lower means merge/sink
/// stalls or load imbalance.
struct WindowStats {
  std::size_t windows = 0;     ///< sink batches executed
  std::size_t runs = 0;        ///< measurements executed
  std::size_t threads = 0;     ///< workers the call sharded over
  double wall_s = 0.0;         ///< summed per-window wall-clock
  double min_window_s = 0.0;   ///< fastest window
  double max_window_s = 0.0;   ///< slowest window
  double busy_s = 0.0;         ///< summed per-run measurement wall-clock

  double occupancy() const noexcept {
    const double capacity = wall_s * static_cast<double>(threads);
    return capacity > 0.0 ? busy_s / capacity : 0.0;
  }
};

/// Per-cell summary produced by the opaque execution mode.
struct OpaqueCellSummary {
  std::vector<Value> factors;
  std::size_t n = 0;
  std::vector<double> mean;  ///< per metric
  std::vector<double> sd;    ///< per metric (sample sd, n-1)
};

struct OpaqueSummary {
  std::vector<std::string> factor_names;
  std::vector<std::string> metric_names;
  std::vector<OpaqueCellSummary> cells;

  /// Serializes the summary to CSV: factor columns, `n`, then
  /// `mean_<metric>`/`sd_<metric>` pairs in metric order.  This is *all*
  /// an opaque tool archives -- writing it next to a raw bundle is what
  /// lets the ablation studies quantify the information it lost.
  void write_csv(std::ostream& out) const;
};

class Engine {
 public:
  struct Options {
    /// Simulated dead time between consecutive measurements (loop
    /// overhead, logging, ...).  Keeps timestamps strictly increasing.
    double inter_run_gap_s = 50e-6;
    /// Seed for the engine's own stream; run i receives the i-th
    /// sequential child split of it (drawn via one engine-stream draw
    /// per run -- the same child split_at(i) denotes).
    std::uint64_t seed = 42;
    /// Initial simulated wall-clock value.
    double start_time_s = 0.0;
    /// Worker threads for campaign execution.  1 = sequential (default);
    /// 0 = one per hardware thread.  See the determinism contract in the
    /// header comment.
    std::size_t threads = 1;
    /// Records per RecordSink::consume() batch.  This also bounds the
    /// engine's resident record buffer when streaming: in parallel mode
    /// the plan is executed in windows of this many runs, so at most one
    /// window of results + one batch of records is ever held.  Larger
    /// batches amortize sink overhead; smaller ones tighten the memory
    /// bound.
    std::size_t sink_batch = 4096;
    /// Runs per execution window in parallel opaque mode.  Bounds
    /// run_opaque's resident MeasureResult staging buffer exactly the
    /// way sink_batch bounds the white-box streaming path (the summaries
    /// are bit-identical at any window size, since windows merge into
    /// the accumulators in plan order).  0 = use sink_batch.
    std::size_t opaque_window = 0;
    /// Reuse one worker pool across all execution windows of a run() or
    /// run_opaque() call (default).  false restores the legacy
    /// spawn-threads-per-window behavior -- kept only so
    /// bench_engine_throughput can quantify the per-window latency the
    /// persistent pool removes.  Ignored when `pool` is set.
    bool reuse_pool = true;
    /// Optional long-lived pool shared across calls (and across Engine
    /// instances, e.g. one pool for every campaign of a cluster report).
    /// When set it supersedes `threads`: the engine shards over
    /// pool->size() workers (clamped to the plan size, like `threads`)
    /// and submits windows to it instead of creating its own.  A
    /// one-worker pool leaves the engine on the sequential path (which
    /// also serves time-dependent measurements).
    std::shared_ptr<core::WorkerPool> pool;
    /// Timestamp model (see Clock).  kIndexed is required for
    /// partitioned execution and ignored by run_opaque (which archives
    /// no timestamps).
    Clock clock = Clock::kAccumulated;
    /// Fault-injection spec armed (core::fault::arm_spec) at the start
    /// of every run()/run_range()/run_opaque() call.  Empty = none.
    /// Only fires in builds with CALIPERS_FAULT_INJECTION.
    std::string faults;
    /// Optional execution-telemetry collector, reset and refilled by
    /// every run()/run_range() call.  Costs two steady-clock reads per
    /// run when attached, nothing when null (the default).
    std::shared_ptr<WindowStats> window_stats;
  };

  explicit Engine(std::vector<std::string> metric_names)
      : Engine(std::move(metric_names), Options{}) {}
  Engine(std::vector<std::string> metric_names, Options options);

  const std::vector<std::string>& metric_names() const noexcept {
    return metric_names_;
  }
  const Options& options() const noexcept { return options_; }

  /// Installs (or clears) the execution-telemetry collector after
  /// construction -- Campaign attaches its own so every campaign run
  /// records per-window wall-clock and pool occupancy into metadata.
  void attach_window_stats(std::shared_ptr<WindowStats> stats) {
    options_.window_stats = std::move(stats);
  }

  /// Resolves an Options::threads request (0 -> hardware concurrency).
  static std::size_t resolve_threads(std::size_t requested) noexcept;

  /// White-box mode: executes the plan in plan order, returns every raw
  /// record.  With threads > 1 the shared callable is invoked from all
  /// workers concurrently and must be thread-safe; stateful measurements
  /// should use the MeasureFactory overload instead.
  RawTable run(const Plan& plan, const MeasureFn& measure) const;
  RawTable run(const Plan& plan, const MeasureFactory& factory) const;

  /// Streaming white-box mode: delivers plan-ordered record batches (at
  /// most Options::sink_batch records each) to `sink` instead of
  /// materializing a RawTable, then close()s the sink.  Output is
  /// byte-for-byte what the RawTable overloads would have archived, at
  /// any thread count; in parallel mode the plan is executed in
  /// sink_batch-sized windows so resident state stays bounded regardless
  /// of campaign size.
  void run(const Plan& plan, const MeasureFn& measure, RecordSink& sink) const;
  void run(const Plan& plan, const MeasureFactory& factory,
           RecordSink& sink) const;

  /// Partitioned streaming execution: runs plan order positions
  /// [first, first + count) only, delivering their plan-ordered batches
  /// to `sink`.  Records are bit-identical to the corresponding slice of
  /// a full run at any thread count: run i's random stream is the i-th
  /// engine-stream split regardless of the range executed.  first > 0
  /// requires Options::clock == Clock::kIndexed (the accumulated clock
  /// depends on every preceding run's duration) and throws
  /// std::invalid_argument otherwise.  run(plan, factory, sink) is
  /// run_range(plan, factory, sink, 0, plan.size()).
  void run_range(const Plan& plan, const MeasureFactory& factory,
                 RecordSink& sink, std::size_t first, std::size_t count) const;

  /// Opaque mode: sorts runs by cell index (sequential sweep), streams
  /// every measurement into online per-cell Welford accumulators, and
  /// throws the raw data away.  Returned summaries are all an opaque
  /// tool would have reported.  Resident state is bounded by one
  /// execution window of MeasureResults (Options::opaque_window) plus
  /// the accumulators -- never the full campaign.
  OpaqueSummary run_opaque(const Plan& plan, const MeasureFn& measure) const;
  OpaqueSummary run_opaque(const Plan& plan,
                           const MeasureFactory& factory) const;

 private:
  /// The number of workers a parallel call shards over: the shared
  /// pool's size when Options::pool is set, else Options::threads
  /// resolved and clamped to the plan size.  <= 1 means sequential.
  std::size_t parallelism(std::size_t plan_runs) const;

  /// Executes order[begin, end) on `pool`, sharded round-robin over the
  /// pre-built worker callables, staging per-position results into
  /// results[0, end - begin).  `seeds[k]` is the pre-split stream seed of
  /// order[begin + k].  `sequence_is_position` selects which index the
  /// context reports: the position in `order` (opaque sweep) or the
  /// run's own plan index (white-box mode).  Throws the lowest-position
  /// failure of the window; the pool stays reusable.  When
  /// `worker_busy_s` is non-null (one slot per worker) each run's
  /// measurement wall-clock is accumulated into its worker's slot.
  void execute_window(core::WorkerPool& pool,
                      const std::vector<PlannedRun>& order, std::size_t begin,
                      std::size_t end, const std::vector<std::uint64_t>& seeds,
                      bool sequence_is_position,
                      const std::vector<MeasureFn>& measures,
                      std::vector<MeasureResult>& results,
                      std::vector<double>* worker_busy_s = nullptr) const;

  std::vector<std::string> metric_names_;
  Options options_;
};

}  // namespace cal
