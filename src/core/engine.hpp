#pragma once
// Measurement engine (stage 2 of the methodology).
//
// The engine is deliberately dumb: it reads the plan, executes each run in
// the prescribed order, stamps every result with its sequence index and
// simulated wall-clock time, and appends it to a RawTable.  All
// intelligence lives before (design) or after (analysis) this stage.
//
// Campaign throughput: the engine can shard runs over a worker pool
// (Options::threads).  Determinism is preserved by construction:
//
//   * every run's random stream is pre-split from the engine seed by run
//     index (Rng::split_at), so run i draws the exact same noise no
//     matter which worker executes it, or in which order;
//   * workers stage results into per-run slots and the merge rebuilds the
//     record batch -- and the simulated clock -- in plan order.
//
// The resulting RawTable is bit-identical to sequential execution at any
// thread count, provided the measurement is *stationary*: it must not
// derive metrics from MeasureContext::now_s (in parallel mode now_s is
// the campaign start time, and final timestamps are reconstructed during
// the merge).  Time-dependent simulations (DVFS governors, scheduler
// perturbation windows) should keep threads == 1.
//
// A second entry point, run_opaque(), emulates how the benchmarks
// criticized by the paper behave: it ignores the plan's randomized order
// (sorting runs by cell, i.e. a sequential parameter sweep) and keeps only
// online mean/standard-deviation summaries per cell.  It exists so the
// ablation studies can quantify exactly what that style of tool loses.

#include <functional>
#include <string>
#include <vector>

#include "core/design.hpp"
#include "core/record.hpp"
#include "core/rng.hpp"

namespace cal {

/// Context handed to the measurement function for one run.
struct MeasureContext {
  double now_s = 0.0;        ///< simulated wall-clock time at run start
  std::size_t sequence = 0;  ///< execution order index
  Rng* rng = nullptr;        ///< per-run random stream (never null)
  std::size_t worker = 0;    ///< worker executing the run (0 if sequential)
};

/// Result of one measurement.
struct MeasureResult {
  std::vector<double> metrics;  ///< aligned to Engine metric names
  double elapsed_s = 0.0;       ///< simulated duration; advances the clock
};

using MeasureFn =
    std::function<MeasureResult(const PlannedRun&, MeasureContext&)>;

/// Builds one measurement callable per worker.  The engine invokes the
/// factory sequentially on the calling thread, once per worker, before
/// any measurement starts -- so the factory itself needs no locking, and
/// each worker can own private mutable state (e.g. a simulator replica).
using MeasureFactory = std::function<MeasureFn(std::size_t worker)>;

/// Per-cell summary produced by the opaque execution mode.
struct OpaqueCellSummary {
  std::vector<Value> factors;
  std::size_t n = 0;
  std::vector<double> mean;  ///< per metric
  std::vector<double> sd;    ///< per metric (sample sd, n-1)
};

struct OpaqueSummary {
  std::vector<std::string> factor_names;
  std::vector<std::string> metric_names;
  std::vector<OpaqueCellSummary> cells;
};

class Engine {
 public:
  struct Options {
    /// Simulated dead time between consecutive measurements (loop
    /// overhead, logging, ...).  Keeps timestamps strictly increasing.
    double inter_run_gap_s = 50e-6;
    /// Seed for the engine's own stream; each run receives an indexed
    /// split of it (run i gets split_at(i)).
    std::uint64_t seed = 42;
    /// Initial simulated wall-clock value.
    double start_time_s = 0.0;
    /// Worker threads for campaign execution.  1 = sequential (default);
    /// 0 = one per hardware thread.  See the determinism contract in the
    /// header comment.
    std::size_t threads = 1;
  };

  explicit Engine(std::vector<std::string> metric_names)
      : Engine(std::move(metric_names), Options{}) {}
  Engine(std::vector<std::string> metric_names, Options options);

  const std::vector<std::string>& metric_names() const noexcept {
    return metric_names_;
  }
  const Options& options() const noexcept { return options_; }

  /// Resolves an Options::threads request (0 -> hardware concurrency).
  static std::size_t resolve_threads(std::size_t requested) noexcept;

  /// White-box mode: executes the plan in plan order, returns every raw
  /// record.  With threads > 1 the shared callable is invoked from all
  /// workers concurrently and must be thread-safe; stateful measurements
  /// should use the MeasureFactory overload instead.
  RawTable run(const Plan& plan, const MeasureFn& measure) const;
  RawTable run(const Plan& plan, const MeasureFactory& factory) const;

  /// Opaque mode: sorts runs by cell index (sequential sweep), aggregates
  /// online per factorial cell, and throws the raw data away.  Returned
  /// summaries are all an opaque tool would have reported.
  OpaqueSummary run_opaque(const Plan& plan, const MeasureFn& measure) const;
  OpaqueSummary run_opaque(const Plan& plan,
                           const MeasureFactory& factory) const;

 private:
  /// Executes `order` sharded round-robin over `threads` workers, staging
  /// per-position results.  `sequence_is_position` selects which index
  /// the context reports: the position in `order` (opaque sweep) or the
  /// run's own plan index (white-box mode).
  std::vector<MeasureResult> execute_sharded(
      const std::vector<PlannedRun>& order, bool sequence_is_position,
      const MeasureFactory& factory, std::size_t threads) const;

  std::vector<std::string> metric_names_;
  Options options_;
};

}  // namespace cal
