#pragma once
// Experiment design generation (stage 1 of the methodology).
//
// DesignBuilder crosses all fixed-levels factors full-factorially,
// replicates each cell, draws per-run values for sampled factors, and
// randomizes the run order.  The result is a Plan: an explicit, serialized
// list of runs that the measurement engine executes *in order*.
//
// Randomizing the run order is the paper's key defense against temporal
// perturbations (pitfall P1): any time-localized disturbance is spread
// uniformly over factor combinations instead of corrupting one contiguous
// slice of the design, and it becomes detectable by plotting measurements
// against their sequence index (Fig. 11, right panel).

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/factor.hpp"
#include "core/value.hpp"

namespace cal {

/// One planned run: values for each factor, in the plan's factor order.
struct PlannedRun {
  std::size_t run_index = 0;   ///< position in execution order (0-based)
  std::size_t cell_index = 0;  ///< which factorial cell this run replicates
  std::size_t replicate = 0;   ///< replicate number within the cell
  std::vector<Value> values;   ///< one value per plan factor
};

/// A fully materialized experiment plan.
class Plan {
 public:
  Plan(std::vector<Factor> factors, std::vector<PlannedRun> runs,
       std::uint64_t seed);

  const std::vector<Factor>& factors() const noexcept { return factors_; }
  const std::vector<PlannedRun>& runs() const noexcept { return runs_; }
  std::uint64_t seed() const noexcept { return seed_; }

  std::size_t size() const noexcept { return runs_.size(); }

  /// Index of a factor by name; throws if absent.
  std::size_t factor_index(const std::string& name) const;

  /// Value of factor `name` in run `run`.
  const Value& value(std::size_t run, const std::string& name) const;

  /// Serializes to CSV: '#' metadata comments, a header row of factor
  /// names prefixed by run/cell/replicate bookkeeping columns, then one
  /// row per run in execution order.
  void write_csv(std::ostream& out) const;

  /// Reads a plan back.  Factor kind information is reduced to
  /// kLevels-of-observed-values (enough to re-run the exact same plan,
  /// which is the point of serializing it).
  static Plan read_csv(std::istream& in);

 private:
  std::vector<Factor> factors_;
  std::vector<PlannedRun> runs_;
  std::uint64_t seed_ = 0;
};

/// Builds plans.  Usage:
///   auto plan = DesignBuilder(seed)
///       .add(Factor::levels("stride", {1, 2, 4, 8}))
///       .add(Factor::log_uniform_int("size_bytes", 1, 1 << 20))
///       .replications(42)
///       .randomize(true)
///       .build();
class DesignBuilder {
 public:
  explicit DesignBuilder(std::uint64_t seed) : seed_(seed) {}

  DesignBuilder& add(Factor factor);

  /// Number of replicates per factorial cell (default 1).
  DesignBuilder& replications(std::size_t n);

  /// Randomize execution order (default true).  Turning this off
  /// reproduces the "sequential sweep" behavior of opaque benchmarks and
  /// is used by the ablation studies.
  DesignBuilder& randomize(bool on);

  /// For sampled factors: how many runs to generate per factorial cell
  /// and replicate (default 1).  E.g. 1000 random message sizes.
  DesignBuilder& samples_per_cell(std::size_t n);

  Plan build() const;

 private:
  std::uint64_t seed_;
  std::vector<Factor> factors_;
  std::size_t replications_ = 1;
  std::size_t samples_per_cell_ = 1;
  bool randomize_ = true;
};

}  // namespace cal
