#pragma once
// Failpoint registry: deterministic fault injection at archive and
// worker-pool seams, for testing the crash-recovery story for real
// instead of assuming it.
//
// A seam in the code declares a named failpoint:
//
//   CAL_FAULT_POINT("engine.window");                  // control seam
//   CAL_FAULT_WRITE("bbx.flush_block", out, p, n);     // write seam
//
// and tests (or an operator, via the CAL_FAULTS environment variable /
// Engine::Options::faults) arm what should go wrong there:
//
//   core::fault::arm_spec("bbx.flush_block=crash@2");  // SIGKILL on the
//                                                      // 2nd block flush
//
// Actions: `crash` (SIGKILL, no unwinding -- a write seam first tears
// the write in half, so the file is also torn), `error` (throws a
// generic injected I/O error), `short_write` (write seams persist half
// the bytes, then throw), `enospc` (throws a no-space error without
// writing), `delay:MS` (sleeps, then proceeds).  An `@N` suffix makes
// the action fire from the N-th hit of the point onwards (1-based);
// without it the first hit fires.
//
// Cost: the macros compile to nothing (resp. a plain stream write) when
// the library is built without CALIPERS_FAULT_INJECTION, so a production
// build carries zero overhead and no behavioral difference.  When
// compiled in, an unarmed registry costs one relaxed atomic load per
// hit.  The registry functions themselves always exist (and are cheap
// no-ops against an empty registry), so tests can probe
// `compiled_in()` and skip crash scenarios on injection-free builds.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace cal::core::fault {

/// What an armed failpoint does when it fires.
enum class Action {
  kNone,        ///< disarmed / pass-through
  kCrash,       ///< raise SIGKILL (write seams tear the write first)
  kError,       ///< throw a generic injected I/O error
  kShortWrite,  ///< write seams persist half the bytes, then throw
  kEnospc,      ///< throw "No space left on device" without writing
  kDelay,       ///< sleep delay_ms, then proceed normally
};

/// Whether the library was compiled with CALIPERS_FAULT_INJECTION --
/// i.e. whether armed faults can actually fire.  Tests gate on this.
bool compiled_in() noexcept;

/// Arms `point`: from the `after`-th hit onwards (1-based) every hit
/// fires `action`.  Re-arming replaces the previous arming and resets
/// the point's hit counter.
void arm(const std::string& point, Action action, std::uint64_t after = 1,
         unsigned delay_ms = 0);

/// Arms from a spec string: `point=action[:MS][@N]` entries separated by
/// `;` (e.g. "bbx.flush_block=enospc@2;csv.write=short_write").  Throws
/// std::invalid_argument on malformed specs.  The CAL_FAULTS environment
/// variable is read through the same grammar, once, lazily.
void arm_spec(const std::string& spec);

/// Disarms one point (its hit counter survives until reset()).
void disarm(const std::string& point);

/// Disarms everything and zeroes all hit counters.
void reset();

/// Hits recorded for `point`.  Hits are only counted while at least one
/// point is armed (the disarmed fast path skips the registry entirely).
std::uint64_t hits(const std::string& point);

/// Backend of CAL_FAULT_POINT: records a hit and executes the armed
/// action, if any.  kShortWrite degrades to kError at a control seam.
void trip(const char* point);

/// Backend of CAL_FAULT_WRITE: like trip(), but the armed action can
/// manipulate the write itself -- kShortWrite/kCrash persist only
/// `size / 2` bytes (then throw resp. SIGKILL), kEnospc writes nothing.
/// With no armed action this is exactly `out.write(data, size)`.
void checked_write(const char* point, std::ostream& out, const char* data,
                   std::size_t size);

}  // namespace cal::core::fault

#if defined(CALIPERS_FAULT_INJECTION)
#define CAL_FAULT_POINT(point) ::cal::core::fault::trip(point)
#define CAL_FAULT_WRITE(point, out, data, size) \
  ::cal::core::fault::checked_write((point), (out), (data), (size))
#else
#define CAL_FAULT_POINT(point) ((void)0)
#define CAL_FAULT_WRITE(point, out, data, size) \
  (out).write((data), static_cast<std::streamsize>(size))
#endif
