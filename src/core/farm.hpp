#pragma once
// Process farm: crash-isolated execution of plan partitions.
//
// run_partition_farm forks one child process per partition (at most
// FarmOptions::max_parallel in flight), runs the caller's job callback
// inside the child, and supervises: a child that exits non-zero -- or
// is killed outright, SIGKILL included -- is re-dispatched with capped
// exponential backoff until its attempt budget is spent.  Fork-level
// isolation is the point: a partition job that crashes mid-write takes
// down its own process, not the coordinator, and the bbx staging
// discipline means it leaves only `*.tmp` debris behind.
//
// Success is judged by the `completed` callback (typically "does the
// partial bundle exist and read back?"), not by the exit status alone:
// a child that reported success but whose bundle is missing counts as
// failed, and a pre-existing bundle (a previous coordinator's work)
// counts as done without dispatching at all -- which is what makes the
// coordinator itself restartable.
//
// The farm degrades gracefully: partitions that exhaust their budget
// are reported in FarmResult::incomplete rather than thrown, so the
// caller can still merge what succeeded (bbx_merge with allow_gaps)
// and tell the user exactly which plan ranges are missing.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/partition.hpp"

namespace cal::core {

struct FarmOptions {
  /// Children in flight at once; 0 = one per partition.
  std::size_t max_parallel = 0;
  /// Total attempts per partition (first try + retries).
  std::size_t attempt_budget = 3;
  /// Backoff before retry k (1-based) is base * 2^(k-1), capped.
  unsigned backoff_base_ms = 50;
  unsigned backoff_cap_ms = 2000;
  /// Optional progress logger ("partition 2 attempt 1 died: signal 9").
  std::function<void(const std::string&)> log;
};

/// One child dispatch and how it ended.
struct FarmAttempt {
  std::size_t partition = 0;
  std::size_t attempt = 0;  ///< 1-based
  /// Child exit status: 0 = clean, > 0 = exit code, < 0 = -signal.
  int exit_code = 0;
  bool completed = false;  ///< `completed` callback accepted the result
};

struct FarmResult {
  bool complete = false;               ///< every partition completed
  std::size_t redispatches = 0;        ///< attempts beyond the first
  std::vector<FarmAttempt> attempts;   ///< every dispatch, in finish order
  std::vector<PlanPartition> incomplete;  ///< budget-exhausted partitions
};

/// Executes `job(partition)` in a forked child per partition.  The job
/// either returns (child exits 0) or throws (child prints the error to
/// stderr and exits 1); the child never returns to the caller's code.
/// `completed(partition)` decides whether a partition's output actually
/// exists -- checked before dispatch (skip) and after every attempt.
FarmResult run_partition_farm(
    const std::vector<PlanPartition>& partitions,
    const std::function<void(const PlanPartition&)>& job,
    const std::function<bool(const PlanPartition&)>& completed,
    const FarmOptions& options = {});

}  // namespace cal::core
