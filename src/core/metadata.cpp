#include "core/metadata.hpp"

#include <cstdio>
#include <istream>
#include <ostream>

namespace cal {

void Metadata::set(const std::string& key, const std::string& value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  entries_.emplace_back(key, value);
}

void Metadata::set(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  set(key, std::string(buf));
}

void Metadata::set(const std::string& key, std::int64_t value) {
  set(key, std::to_string(value));
}

void Metadata::set(const std::string& key, std::uint64_t value) {
  set(key, std::to_string(value));
}

std::optional<std::string> Metadata::get(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

bool Metadata::contains(const std::string& key) const {
  return get(key).has_value();
}

void Metadata::write(std::ostream& out) const {
  for (const auto& [k, v] : entries_) {
    out << k << ": " << v << '\n';
  }
}

Metadata Metadata::read(std::istream& in) {
  Metadata md;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto colon = line.find(": ");
    if (colon == std::string::npos) continue;
    md.set(line.substr(0, colon), line.substr(colon + 2));
  }
  return md;
}

Metadata Metadata::capture_build() {
  Metadata md;
#if defined(__clang__)
  md.set("compiler", "clang " __clang_version__);
#elif defined(__GNUC__)
  md.set("compiler", "gcc " + std::to_string(__GNUC__) + "." +
                         std::to_string(__GNUC_MINOR__) + "." +
                         std::to_string(__GNUC_PATCHLEVEL__));
#else
  md.set("compiler", "unknown");
#endif
  md.set("cxx_standard", static_cast<std::int64_t>(__cplusplus));
#if defined(NDEBUG)
  md.set("build_type", "release");
#else
  md.set("build_type", "debug");
#endif
  md.set("library", "calipers 1.0.0");
  return md;
}

}  // namespace cal
