#include "core/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace cal {

std::vector<PlanPartition> partition_plan(std::size_t plan_runs,
                                          std::size_t parts,
                                          std::size_t block_records) {
  if (parts == 0) {
    throw std::invalid_argument("partition_plan: parts must be >= 1");
  }
  if (block_records == 0) {
    throw std::invalid_argument("partition_plan: block_records must be >= 1");
  }
  // Split the *block grid*, not the run range: block boundaries are the
  // finest cut that keeps every partial bundle's shard bytes identical
  // to the corresponding slice of a single-process archive.
  const std::size_t blocks =
      plan_runs == 0 ? 0 : (plan_runs + block_records - 1) / block_records;
  const std::size_t n = std::max<std::size_t>(
      std::min(parts, std::max<std::size_t>(blocks, 1)), 1);

  std::vector<PlanPartition> out;
  out.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t first_block = blocks * p / n;
    const std::size_t end_block = blocks * (p + 1) / n;
    PlanPartition part;
    part.index = p;
    part.parts = n;
    part.first_run = first_block * block_records;
    part.run_count =
        std::min(end_block * block_records, plan_runs) - part.first_run;
    out.push_back(part);
  }
  return out;
}

}  // namespace cal
