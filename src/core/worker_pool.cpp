#include "core/worker_pool.hpp"

#include "obs/trace.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace cal::core {
namespace {

void set_current_thread_name(const std::string& pool_name, std::size_t w) {
#if defined(__linux__)
  // pthread thread names are limited to 15 characters + NUL; keep the
  // worker index visible and truncate the pool name to fit.
  std::string label = pool_name + "/" + std::to_string(w);
  if (label.size() > 15) {
    const std::string suffix = "/" + std::to_string(w);
    label = pool_name.substr(0, 15 - suffix.size()) + suffix;
  }
  pthread_setname_np(pthread_self(), label.c_str());
#else
  (void)pool_name;
  (void)w;
#endif
}

}  // namespace

WorkerPool::WorkerPool(std::size_t threads, std::string name)
    : name_(std::move(name)) {
  const std::size_t count = std::max<std::size_t>(threads, 1);
  queues_.resize(count);
  threads_.reserve(count);
  try {
    for (std::size_t w = 0; w < count; ++w) {
      threads_.emplace_back([this, w] {
        set_current_thread_name(name_, w);
        // Full (untruncated) pool/worker label for trace output, so
        // Perfetto tracks carry the pool topology.
        obs::trace::set_thread_name(name_ + "/" + std::to_string(w));
        worker_loop(w);
      });
    }
  } catch (...) {
    // A thread failed to spawn (e.g. EAGAIN on a thread-limited host):
    // shut down the workers that did start, so the half-built pool
    // unwinds cleanly instead of std::terminate-ing on a joinable
    // std::thread destructor.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& thread : threads_) thread.join();
    throw;
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void WorkerPool::worker_loop(std::size_t w) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !queues_[w].empty(); });
    if (queues_[w].empty()) return;  // stop requested and queue drained
    Submission sub = std::move(queues_[w].front());
    queues_[w].pop_front();
    lock.unlock();

    std::exception_ptr error;
    try {
      sub.task(w);
    } catch (...) {
      error = std::current_exception();
    }

    lock.lock();
    if (error) failures_.push_back(Failure{sub.seq, error});
    if (--pending_ == 0) idle_cv_.notify_all();
  }
}

void WorkerPool::submit(Task task) {
  std::size_t worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker = next_worker_;
    next_worker_ = (next_worker_ + 1) % size();
  }
  submit_to(worker, std::move(task));
}

void WorkerPool::submit_to(std::size_t worker, Task task) {
  if (worker >= size()) {
    throw std::out_of_range("WorkerPool: no such worker");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[worker].push_back(Submission{next_seq_++, std::move(task)});
    ++pending_;
  }
  work_cv_.notify_all();
}

void WorkerPool::barrier() {
  std::vector<Failure> failures;
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [&] { return pending_ == 0; });
    failures.swap(failures_);
    next_worker_ = 0;  // each barrier-delimited batch maps identically
  }
  if (failures.empty()) return;
  const auto first = std::min_element(
      failures.begin(), failures.end(),
      [](const Failure& a, const Failure& b) { return a.seq < b.seq; });
  std::rethrow_exception(first->error);
}

void WorkerPool::run_indexed(std::size_t count, const IndexedTask& body,
                             std::size_t width) {
  if (width == 0 || width > size()) width = size();
  struct ShardStop {
    std::size_t index = 0;
    std::exception_ptr error;
  };
  // One slot per worker: a shard records its first failure here and
  // stops, so exceptions never reach the pool-level capture and the
  // lowest *index* (not the earliest submission) decides what the
  // caller sees.
  std::vector<std::optional<ShardStop>> stops(width);
  const std::size_t active = std::min(width, count);
  for (std::size_t w = 0; w < active; ++w) {
    submit_to(w, [&stops, &body, count, width](std::size_t worker) {
      for (std::size_t k = worker; k < count; k += width) {
        try {
          body(worker, k);
        } catch (...) {
          stops[worker] = ShardStop{k, std::current_exception()};
          return;
        }
      }
    });
  }
  barrier();
  const ShardStop* first = nullptr;
  for (const auto& stop : stops) {
    if (stop && (first == nullptr || stop->index < first->index)) {
      first = &*stop;
    }
  }
  if (first != nullptr) std::rethrow_exception(first->error);
}

}  // namespace cal::core
