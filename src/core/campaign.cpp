#include "core/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "io/archive/bbx_reader.hpp"
#include "io/archive/bbx_writer.hpp"
#include "io/stream_sink.hpp"

namespace cal {

const char* to_string(ArchiveFormat format) noexcept {
  return format == ArchiveFormat::kBbx ? "bbx" : "csv";
}

std::optional<ArchiveFormat> parse_archive_format(const std::string& text) {
  if (text == "csv") return ArchiveFormat::kCsv;
  if (text == "bbx") return ArchiveFormat::kBbx;
  return std::nullopt;
}

namespace {

io::archive::BbxWriterOptions bbx_options(const ArchiveOptions& archive) {
  io::archive::BbxWriterOptions options;
  options.shards = archive.shards;
  options.block_records = archive.block_records;
  return options;
}

/// Removes the *other* format's raw results from `dir` before archiving
/// into it, so read_dir's auto-detection can never resurrect a stale
/// archive after the bundle was rewritten in the other format.
void remove_stale_results(const std::string& dir, ArchiveFormat format) {
  namespace fs = std::filesystem;
  if (format == ArchiveFormat::kBbx) {
    fs::remove(dir + "/results.csv");
  } else {
    fs::remove(dir + "/" + std::string(io::archive::Manifest::file_name()));
    for (std::size_t s = 0; fs::remove(
             dir + "/" + io::archive::Manifest::shard_file_name(s));
         ++s) {
    }
  }
}

}  // namespace

void CampaignResult::write_dir(const std::string& dir,
                               const ArchiveOptions& archive) const {
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/plan.csv");
    if (!out) throw std::runtime_error("Campaign: cannot write plan.csv");
    plan.write_csv(out);
  }
  remove_stale_results(dir, archive.format);
  if (archive.format == ArchiveFormat::kCsv) {
    std::ofstream out(dir + "/results.csv");
    if (!out) throw std::runtime_error("Campaign: cannot write results.csv");
    table.write_csv(out);
  } else {
    io::archive::BbxWriter writer(dir, bbx_options(archive));
    writer.begin(table.factor_names(), table.metric_names(), table.size());
    for (const auto& [key, value] : metadata.entries()) {
      writer.add_manifest_extra(key, value);
    }
    // Feed block-sized copies so peak extra memory is one block, not a
    // second full table (the table itself stays usable).
    const auto& records = table.records();
    for (std::size_t i = 0; i < records.size();
         i += archive.block_records) {
      const std::size_t end =
          std::min(records.size(), i + archive.block_records);
      writer.consume(std::vector<RawRecord>(records.begin() + i,
                                            records.begin() + end));
    }
    writer.close();
  }
  {
    std::ofstream out(dir + "/metadata.txt");
    if (!out) throw std::runtime_error("Campaign: cannot write metadata.txt");
    metadata.write(out);
  }
}

CampaignResult CampaignResult::read_dir(const std::string& dir) {
  const std::string plan_path = dir + "/plan.csv";
  std::ifstream plan_in(plan_path);
  if (!plan_in) {
    throw std::runtime_error("Campaign: cannot read '" + plan_path +
                             "' (is '" + dir + "' a campaign bundle?)");
  }
  Plan plan = Plan::read_csv(plan_in);

  // Results format auto-detection: a plain results.csv wins (the
  // historical layout), else a bbx manifest marks a sharded bundle.
  // When neither exists the error must name the bundle and both
  // candidates -- "cannot open file" with no path helps nobody decide
  // whether the bundle is incomplete or simply elsewhere.
  const std::string csv_path = dir + "/results.csv";
  const std::string manifest_path =
      dir + "/" + std::string(io::archive::Manifest::file_name());
  RawTable table({}, {});
  if (std::filesystem::exists(csv_path)) {
    std::ifstream results_in(csv_path);
    if (!results_in) {
      throw std::runtime_error("Campaign: cannot read '" + csv_path + "'");
    }
    table = RawTable::read_csv(results_in, plan.factors().size());
  } else if (io::archive::BbxReader::is_bundle(dir)) {
    table = io::archive::BbxReader(dir).read_all();
  } else {
    // Crash forensics before the generic error: staged `*.tmp` files are
    // the signature of a campaign that died mid-write or mid-finalize --
    // a materially different situation from "wrong directory", and one
    // bbx_fsck can often salvage.
    namespace fs = std::filesystem;
    const bool debris =
        fs::exists(csv_path + ".tmp") || fs::exists(manifest_path + ".tmp") ||
        fs::exists(dir + "/" + io::archive::Manifest::shard_file_name(0) +
                   ".tmp") ||
        fs::exists(dir + "/metadata.txt.tmp");
    if (debris) {
      throw std::runtime_error(
          "Campaign: bundle '" + dir +
          "' is incomplete (interrupted finalize left *.tmp staging "
          "files); run bbx_fsck to inspect and salvage it");
    }
    throw std::runtime_error(
        "Campaign: bundle '" + dir + "' has no raw results: neither '" +
        csv_path + "' nor '" + manifest_path +
        "' exists (incomplete campaign, or the wrong directory)");
  }

  std::ifstream md_in(dir + "/metadata.txt");
  if (!md_in) throw std::runtime_error("Campaign: cannot read metadata.txt");
  Metadata md = Metadata::read(md_in);

  return CampaignResult{std::move(plan), std::move(table), std::move(md)};
}

Campaign::Campaign(Plan plan, Engine engine, Metadata metadata)
    : plan_(std::move(plan)),
      engine_(std::move(engine)),
      metadata_(std::move(metadata)),
      window_stats_(std::make_shared<WindowStats>()) {
  engine_.attach_window_stats(window_stats_);
}

void Campaign::stamp_window_stats(Metadata& md) const {
  const WindowStats& ws = *window_stats_;
  if (ws.windows == 0) return;  // opaque mode / nothing ran
  md.set("window_count", static_cast<std::int64_t>(ws.windows));
  md.set("window_wall_s", ws.wall_s);
  md.set("window_wall_min_s", ws.min_window_s);
  md.set("window_wall_max_s", ws.max_window_s);
  md.set("worker_busy_s", ws.busy_s);
  md.set("worker_occupancy", ws.occupancy());
}

Metadata Campaign::finished_metadata(bool streamed) const {
  Metadata md = metadata_;
  md.set("plan_runs", static_cast<std::int64_t>(plan_.size()));
  md.set("plan_seed", static_cast<std::uint64_t>(plan_.seed()));
  // Record the worker count actually used: the shared pool's width when
  // one is attached, else the resolved request -- clamped either way,
  // because the engine never shards over more workers than there are
  // planned runs.
  const Engine::Options& eopts = engine_.options();
  const std::size_t requested = eopts.pool
                                    ? eopts.pool->size()
                                    : Engine::resolve_threads(eopts.threads);
  md.set("engine_threads",
         static_cast<std::int64_t>(
             std::min(requested, std::max<std::size_t>(plan_.size(), 1))));
  if (eopts.pool) md.set("worker_pool", eopts.pool->name());
  if (eopts.clock == Clock::kIndexed) {
    md.set("engine_clock", std::string("indexed"));
  }
  if (streamed) {
    md.set("record_path", std::string("streamed"));
    md.set("sink_batch",
           static_cast<std::int64_t>(engine_.options().sink_batch));
  }
  return md;
}

CampaignResult Campaign::run(const MeasureFn& measure) const {
  return run(MeasureFactory([&measure](std::size_t) { return measure; }));
}

CampaignResult Campaign::run(const MeasureFactory& factory) const {
  RawTable table = engine_.run(plan_, factory);
  Metadata md = finished_metadata(/*streamed=*/false);
  stamp_window_stats(md);
  return CampaignResult{plan_, std::move(table), std::move(md)};
}

StreamedCampaign Campaign::run(const MeasureFn& measure,
                               RecordSink& sink) const {
  return run(MeasureFactory([&measure](std::size_t) { return measure; }),
             sink);
}

StreamedCampaign Campaign::run(const MeasureFactory& factory,
                               RecordSink& sink) const {
  engine_.run(plan_, factory, sink);
  Metadata md = finished_metadata(/*streamed=*/true);
  stamp_window_stats(md);
  return StreamedCampaign{plan_, std::move(md)};
}

StreamedCampaign Campaign::run_to_dir(const MeasureFactory& factory,
                                      const std::string& dir,
                                      const ArchiveOptions& archive) const {
  std::filesystem::create_directories(dir);
  // Atomic finalize: every bundle file is staged under a `*.tmp` name and
  // renamed only after the campaign succeeded, metadata.txt last -- so an
  // interrupted campaign leaves only `.tmp` debris (and, for bbx, the
  // writer's own staged shards), never a bundle read_dir would accept.
  {
    std::ofstream out(dir + "/plan.csv.tmp");
    if (!out) throw std::runtime_error("Campaign: cannot write plan.csv");
    plan_.write_csv(out);
    out.flush();
    if (!out) throw std::runtime_error("Campaign: plan.csv write failed");
  }

  remove_stale_results(dir, archive.format);
  std::optional<StreamedCampaign> streamed;
  if (archive.format == ArchiveFormat::kCsv) {
    io::CsvStreamSink sink(dir + "/results.csv.tmp");
    streamed = run(factory, sink);
    std::filesystem::rename(dir + "/results.csv.tmp", dir + "/results.csv");
  } else {
    io::archive::BbxWriter sink(dir, bbx_options(archive));
    // The engine close()s the sink inside run(), after which manifest
    // extras are frozen -- so stamp the (run-independent) campaign
    // metadata into the manifest up front.
    const Metadata stamped = finished_metadata(true);
    for (const auto& [key, value] : stamped.entries()) {
      sink.add_manifest_extra(key, value);
    }
    streamed = run(factory, sink);
  }
  streamed->metadata.set("archive_format",
                         std::string(to_string(archive.format)));
  if (archive.format == ArchiveFormat::kBbx) {
    streamed->metadata.set("archive_shards",
                           static_cast<std::int64_t>(archive.shards));
  }

  {
    std::ofstream out(dir + "/metadata.txt.tmp");
    if (!out) throw std::runtime_error("Campaign: cannot write metadata.txt");
    streamed->metadata.write(out);
    out.flush();
    if (!out) throw std::runtime_error("Campaign: metadata.txt write failed");
  }
  std::filesystem::rename(dir + "/plan.csv.tmp", dir + "/plan.csv");
  std::filesystem::rename(dir + "/metadata.txt.tmp", dir + "/metadata.txt");
  return *std::move(streamed);
}

StreamedCampaign Campaign::run_partition_to_dir(
    const MeasureFactory& factory, const std::string& dir,
    const PlanPartition& partition, const ArchiveOptions& archive) const {
  if (archive.format != ArchiveFormat::kBbx) {
    throw std::invalid_argument(
        "Campaign: partitioned execution archives bbx partial bundles "
        "(bbx_merge has no CSV path)");
  }
  if (engine_.options().clock != Clock::kIndexed) {
    throw std::invalid_argument(
        "Campaign: partitioned execution requires Engine Options::clock == "
        "Clock::kIndexed (accumulated timestamps depend on runs outside the "
        "partition)");
  }
  if (archive.block_records == 0 ||
      partition.first_run % archive.block_records != 0) {
    throw std::invalid_argument(
        "Campaign: partition first_run " +
        std::to_string(partition.first_run) +
        " is not a multiple of block_records " +
        std::to_string(archive.block_records) +
        " (partition with partition_plan)");
  }
  if (partition.first_run > plan_.size() ||
      partition.run_count > plan_.size() - partition.first_run) {
    throw std::out_of_range("Campaign: partition exceeds the plan's " +
                            std::to_string(plan_.size()) + " runs");
  }

  std::filesystem::create_directories(dir);
  io::archive::BbxWriterOptions options = bbx_options(archive);
  options.first_block = partition.first_run / archive.block_records;
  io::archive::BbxWriter sink(dir, options);

  Metadata stamped = finished_metadata(/*streamed=*/true);
  stamped.set("partition_index", static_cast<std::int64_t>(partition.index));
  stamped.set("partition_parts", static_cast<std::int64_t>(partition.parts));
  stamped.set("partition_first_run",
              static_cast<std::int64_t>(partition.first_run));
  stamped.set("partition_run_count",
              static_cast<std::int64_t>(partition.run_count));
  for (const auto& [key, value] : stamped.entries()) {
    sink.add_manifest_extra(key, value);
  }
  engine_.run_range(plan_, factory, sink, partition.first_run,
                    partition.run_count);
  // The manifest extras froze when run_range close()d the sink; the
  // returned metadata still carries this partition's telemetry.
  stamp_window_stats(stamped);
  return StreamedCampaign{plan_, std::move(stamped)};
}

}  // namespace cal
