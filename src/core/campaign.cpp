#include "core/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "io/stream_sink.hpp"

namespace cal {

void CampaignResult::write_dir(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/plan.csv");
    if (!out) throw std::runtime_error("Campaign: cannot write plan.csv");
    plan.write_csv(out);
  }
  {
    std::ofstream out(dir + "/results.csv");
    if (!out) throw std::runtime_error("Campaign: cannot write results.csv");
    table.write_csv(out);
  }
  {
    std::ofstream out(dir + "/metadata.txt");
    if (!out) throw std::runtime_error("Campaign: cannot write metadata.txt");
    metadata.write(out);
  }
}

CampaignResult CampaignResult::read_dir(const std::string& dir) {
  std::ifstream plan_in(dir + "/plan.csv");
  if (!plan_in) throw std::runtime_error("Campaign: cannot read plan.csv");
  Plan plan = Plan::read_csv(plan_in);

  std::ifstream results_in(dir + "/results.csv");
  if (!results_in) {
    throw std::runtime_error("Campaign: cannot read results.csv");
  }
  RawTable table = RawTable::read_csv(results_in, plan.factors().size());

  std::ifstream md_in(dir + "/metadata.txt");
  if (!md_in) throw std::runtime_error("Campaign: cannot read metadata.txt");
  Metadata md = Metadata::read(md_in);

  return CampaignResult{std::move(plan), std::move(table), std::move(md)};
}

Campaign::Campaign(Plan plan, Engine engine, Metadata metadata)
    : plan_(std::move(plan)),
      engine_(std::move(engine)),
      metadata_(std::move(metadata)) {}

Metadata Campaign::finished_metadata(bool streamed) const {
  Metadata md = metadata_;
  md.set("plan_runs", static_cast<std::int64_t>(plan_.size()));
  md.set("plan_seed", static_cast<std::uint64_t>(plan_.seed()));
  // Record the worker count actually used: the shared pool's width when
  // one is attached, else the resolved request -- clamped either way,
  // because the engine never shards over more workers than there are
  // planned runs.
  const Engine::Options& eopts = engine_.options();
  const std::size_t requested = eopts.pool
                                    ? eopts.pool->size()
                                    : Engine::resolve_threads(eopts.threads);
  md.set("engine_threads",
         static_cast<std::int64_t>(
             std::min(requested, std::max<std::size_t>(plan_.size(), 1))));
  if (eopts.pool) md.set("worker_pool", eopts.pool->name());
  if (streamed) {
    md.set("record_path", std::string("streamed"));
    md.set("sink_batch",
           static_cast<std::int64_t>(engine_.options().sink_batch));
  }
  return md;
}

CampaignResult Campaign::run(const MeasureFn& measure) const {
  return run(MeasureFactory([&measure](std::size_t) { return measure; }));
}

CampaignResult Campaign::run(const MeasureFactory& factory) const {
  RawTable table = engine_.run(plan_, factory);
  return CampaignResult{plan_, std::move(table),
                        finished_metadata(/*streamed=*/false)};
}

StreamedCampaign Campaign::run(const MeasureFn& measure,
                               RecordSink& sink) const {
  return run(MeasureFactory([&measure](std::size_t) { return measure; }),
             sink);
}

StreamedCampaign Campaign::run(const MeasureFactory& factory,
                               RecordSink& sink) const {
  engine_.run(plan_, factory, sink);
  return StreamedCampaign{plan_, finished_metadata(/*streamed=*/true)};
}

StreamedCampaign Campaign::run_to_dir(const MeasureFactory& factory,
                                      const std::string& dir) const {
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/plan.csv");
    if (!out) throw std::runtime_error("Campaign: cannot write plan.csv");
    plan_.write_csv(out);
  }
  io::CsvStreamSink sink(dir + "/results.csv");
  StreamedCampaign streamed = run(factory, sink);
  {
    std::ofstream out(dir + "/metadata.txt");
    if (!out) throw std::runtime_error("Campaign: cannot write metadata.txt");
    streamed.metadata.write(out);
  }
  return streamed;
}

}  // namespace cal
