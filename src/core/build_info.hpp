#pragma once
// Build identity of the running binary, for `--version` output and bug
// reports: the git revision the tree was configured from, the compiler
// that built it, the build type, and the SIMD dispatch level this
// machine actually selected at load time (which no build-time constant
// can know).
//
// The git revision is a compile definition scoped to build_info.cpp
// alone (see CMakeLists.txt), so touching the revision recompiles one
// translation unit, not the library.

#include <string>

namespace cal::core {

/// Git describe of the configured source tree ("unknown" outside git).
std::string build_version();

/// Compiler name + version the library was built with.
std::string build_compiler();

/// "Release", "Debug", ... from CMake (NDEBUG-derived fallback).
std::string build_type();

/// The canonical one-line `--version` text:
///   <tool> <git describe> (<compiler>, <build type>, simd=<level>)
std::string build_info_line(const std::string& tool);

}  // namespace cal::core
