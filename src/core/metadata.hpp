#pragma once
// Environment capture.
//
// The methodology requires that every campaign records "a lot of meta-data
// about the measurements and the environment (machine information,
// operating system and compiler versions, compilation command, benchmark
// parameters...)".  Metadata is an ordered key/value store with a text
// round-trip; capture_build() fills in what the compiler can tell us, and
// simulated campaigns add the full simulated-machine spec so two campaigns
// with "similar inputs and completely different outputs" can be compared.

#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cal {

class Metadata {
 public:
  /// Sets (or overwrites) a key.
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, double value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, std::uint64_t value);

  std::optional<std::string> get(const std::string& key) const;
  bool contains(const std::string& key) const;

  const std::vector<std::pair<std::string, std::string>>& entries()
      const noexcept {
    return entries_;
  }

  /// "key: value" lines.
  void write(std::ostream& out) const;
  static Metadata read(std::istream& in);

  /// Compiler id/version, C++ standard, build type, library version.
  static Metadata capture_build();

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace cal
