#include "core/rng.hpp"

#include <cmath>
#include <numbers>

namespace cal {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Lemire-style rejection to stay unbiased.
  const std::uint64_t threshold = (0 - span) % span;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return lo + static_cast<std::int64_t>(r % span);
    }
  }
}

double Rng::log_uniform(double a, double b) noexcept {
  const double x = uniform(std::log10(a), std::log10(b));
  return std::pow(10.0, x);
}

std::int64_t Rng::log_uniform_int(std::int64_t a, std::int64_t b) noexcept {
  const double draw =
      log_uniform(static_cast<double>(a), static_cast<double>(b));
  auto v = static_cast<std::int64_t>(std::llround(draw));
  if (v < a) v = a;
  if (v > b) v = b;
  return v;
}

double Rng::normal() noexcept {
  // Box-Muller without caching the second variate: deterministic stream
  // position regardless of call interleaving.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double sd) noexcept {
  return mean + sd * normal();
}

double Rng::lognormal_factor(double sigma) noexcept {
  return std::exp(normal(0.0, sigma));
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::size_t Rng::pick_index(std::size_t n) noexcept {
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

void Rng::discard(std::uint64_t n) noexcept {
  for (std::uint64_t i = 0; i < n; ++i) next_u64();
}

Rng Rng::split_at(std::uint64_t i) const noexcept {
  Rng probe = *this;  // never perturbs the parent stream
  probe.discard(i);
  return probe.split();
}

void Rng::jump() noexcept {
  // Polynomial for the canonical xoshiro256** 2^128 jump (Blackman &
  // Vigna); equivalent to 2^128 next_u64() calls.
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t s = 0; s < acc.size(); ++s) acc[s] ^= state_[s];
      }
      next_u64();
    }
  }
  state_ = acc;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

}  // namespace cal
