#include "core/design.hpp"

#include <ostream>
#include <stdexcept>

#include "io/csv.hpp"

namespace cal {

Plan::Plan(std::vector<Factor> factors, std::vector<PlannedRun> runs,
           std::uint64_t seed)
    : factors_(std::move(factors)), runs_(std::move(runs)), seed_(seed) {
  for (const auto& run : runs_) {
    if (run.values.size() != factors_.size()) {
      throw std::invalid_argument("Plan: run width != factor count");
    }
  }
}

std::size_t Plan::factor_index(const std::string& name) const {
  for (std::size_t i = 0; i < factors_.size(); ++i) {
    if (factors_[i].name() == name) return i;
  }
  throw std::out_of_range("Plan: unknown factor '" + name + "'");
}

const Value& Plan::value(std::size_t run, const std::string& name) const {
  return runs_.at(run).values.at(factor_index(name));
}

void Plan::write_csv(std::ostream& out) const {
  out << "# calipers experiment plan\n";
  out << "# seed: " << seed_ << "\n";
  for (const auto& f : factors_) {
    out << "# factor: " << f.name() << " category=" << to_string(f.category())
        << "\n";
  }
  std::vector<std::string> header = {"run", "cell", "replicate"};
  for (const auto& f : factors_) header.push_back(f.name());
  io::write_csv_row(out, header);
  for (const auto& run : runs_) {
    std::vector<std::string> row = {std::to_string(run.run_index),
                                    std::to_string(run.cell_index),
                                    std::to_string(run.replicate)};
    for (const auto& v : run.values) row.push_back(v.to_string());
    io::write_csv_row(out, row);
  }
}

Plan Plan::read_csv(std::istream& in) {
  const auto rows = io::read_csv(in);
  if (rows.empty()) throw std::runtime_error("Plan: empty CSV");
  const auto& header = rows.front();
  if (header.size() < 4 || header[0] != "run" || header[1] != "cell" ||
      header[2] != "replicate") {
    throw std::runtime_error("Plan: malformed header");
  }

  const std::size_t n_factors = header.size() - 3;
  std::vector<std::vector<Value>> observed(n_factors);
  std::vector<PlannedRun> runs;
  runs.reserve(rows.size() - 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != header.size()) {
      throw std::runtime_error("Plan: ragged CSV row");
    }
    PlannedRun run;
    run.run_index = static_cast<std::size_t>(std::stoull(row[0]));
    run.cell_index = static_cast<std::size_t>(std::stoull(row[1]));
    run.replicate = static_cast<std::size_t>(std::stoull(row[2]));
    for (std::size_t c = 0; c < n_factors; ++c) {
      Value v = Value::parse(row[3 + c]);
      run.values.push_back(v);
      auto& seen = observed[c];
      bool found = false;
      for (const auto& s : seen) {
        if (s == v) {
          found = true;
          break;
        }
      }
      if (!found) seen.push_back(v);
    }
    runs.push_back(std::move(run));
  }

  std::vector<Factor> factors;
  factors.reserve(n_factors);
  for (std::size_t c = 0; c < n_factors; ++c) {
    factors.push_back(Factor::levels(header[3 + c], std::move(observed[c])));
  }
  return Plan(std::move(factors), std::move(runs), /*seed=*/0);
}

DesignBuilder& DesignBuilder::add(Factor factor) {
  for (const auto& f : factors_) {
    if (f.name() == factor.name()) {
      throw std::invalid_argument("DesignBuilder: duplicate factor '" +
                                  factor.name() + "'");
    }
  }
  factors_.push_back(std::move(factor));
  return *this;
}

DesignBuilder& DesignBuilder::replications(std::size_t n) {
  if (n == 0) throw std::invalid_argument("DesignBuilder: replications == 0");
  replications_ = n;
  return *this;
}

DesignBuilder& DesignBuilder::randomize(bool on) {
  randomize_ = on;
  return *this;
}

DesignBuilder& DesignBuilder::samples_per_cell(std::size_t n) {
  if (n == 0) throw std::invalid_argument("DesignBuilder: samples == 0");
  samples_per_cell_ = n;
  return *this;
}

Plan DesignBuilder::build() const {
  if (factors_.empty()) {
    throw std::logic_error("DesignBuilder: no factors added");
  }
  Rng rng(seed_);

  std::size_t n_cells = 1;
  for (const auto& f : factors_) n_cells *= f.cell_count();

  const bool has_sampled = [&] {
    for (const auto& f : factors_) {
      if (f.kind() != FactorKind::kLevels) return true;
    }
    return false;
  }();
  const std::size_t samples = has_sampled ? samples_per_cell_ : 1;

  std::vector<PlannedRun> runs;
  runs.reserve(n_cells * replications_ * samples);
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    // Decompose the cell index into per-factor level indices
    // (mixed-radix, first factor varies slowest).
    std::vector<std::size_t> level_idx(factors_.size());
    std::size_t rest = cell;
    for (std::size_t f = factors_.size(); f-- > 0;) {
      const std::size_t radix = factors_[f].cell_count();
      level_idx[f] = rest % radix;
      rest /= radix;
    }
    for (std::size_t rep = 0; rep < replications_; ++rep) {
      for (std::size_t s = 0; s < samples; ++s) {
        PlannedRun run;
        run.cell_index = cell;
        run.replicate = rep;
        run.values.reserve(factors_.size());
        for (std::size_t f = 0; f < factors_.size(); ++f) {
          run.values.push_back(factors_[f].value_for_cell(level_idx[f], rng));
        }
        runs.push_back(std::move(run));
      }
    }
  }

  if (randomize_) {
    rng.shuffle(runs);
  }
  for (std::size_t i = 0; i < runs.size(); ++i) runs[i].run_index = i;
  return Plan(factors_, std::move(runs), seed_);
}

}  // namespace cal
