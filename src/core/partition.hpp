#pragma once
// Plan partitioning: the unit of distributed campaign execution.
//
// A PlanPartition is a contiguous run-index range [first_run, end_run())
// of a Plan, executable as an independent job: per-run random streams
// are pre-split from the engine seed by run index (Rng::split_at), so a
// partition's records do not depend on which process -- or how many --
// executed the rest of the plan.  Each partition streams its range into
// its own bbx *partial bundle* (Campaign::run_partition_to_dir), and
// io::archive::bbx_merge concatenates the partial bundles back into a
// bundle byte-identical to a single-process run.
//
// Byte-identity needs partition boundaries to fall on bbx block
// boundaries (a block never spans two writers), which is why
// partition_plan takes the archive's block_records: partitions are
// whole-block ranges, as evenly sized as the block grid allows.

#include <cstddef>
#include <vector>

namespace cal {

/// One contiguous slice of a plan's execution order.
struct PlanPartition {
  std::size_t index = 0;      ///< partition ordinal (0-based)
  std::size_t parts = 1;      ///< total partitions in the split
  std::size_t first_run = 0;  ///< first plan run index (inclusive)
  std::size_t run_count = 0;  ///< number of runs in this partition

  std::size_t end_run() const noexcept { return first_run + run_count; }

  friend bool operator==(const PlanPartition&, const PlanPartition&) = default;
};

/// Splits `plan_runs` runs into at most `parts` contiguous partitions
/// whose boundaries are multiples of `block_records` (the bbx block
/// size), covering every run exactly once.  Fewer partitions come back
/// when the plan has fewer blocks than `parts` -- a partition is never
/// empty.  Throws std::invalid_argument when parts or block_records is
/// zero.
std::vector<PlanPartition> partition_plan(std::size_t plan_runs,
                                          std::size_t parts,
                                          std::size_t block_records);

}  // namespace cal
