#pragma once
// Campaign: the user-facing composition of the three methodology stages.
//
// A Campaign owns a plan (stage 1), runs it through an Engine against a
// measurement function (stage 2), captures metadata, and can persist the
// whole bundle -- plan.csv, results.csv, metadata.txt -- to a directory so
// the analysis (stage 3) can happen offline, later, by someone else.

#include <string>

#include "core/design.hpp"
#include "core/engine.hpp"
#include "core/metadata.hpp"
#include "core/record.hpp"

namespace cal {

/// Everything a finished campaign produced.
struct CampaignResult {
  Plan plan;
  RawTable table;
  Metadata metadata;

  /// Writes plan.csv, results.csv and metadata.txt under `dir`
  /// (created if missing).
  void write_dir(const std::string& dir) const;

  /// Reads a bundle back.
  static CampaignResult read_dir(const std::string& dir);
};

class Campaign {
 public:
  Campaign(Plan plan, Engine engine, Metadata metadata);

  /// Runs the campaign in white-box mode.  With a parallel engine the
  /// shared callable must be thread-safe; stateful measurements should
  /// use the factory overload (one callable per worker).
  CampaignResult run(const MeasureFn& measure) const;
  CampaignResult run(const MeasureFactory& factory) const;

  const Plan& plan() const noexcept { return plan_; }
  const Metadata& metadata() const noexcept { return metadata_; }

 private:
  Plan plan_;
  Engine engine_;
  Metadata metadata_;
};

}  // namespace cal
