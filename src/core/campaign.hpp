#pragma once
// Campaign: the user-facing composition of the three methodology stages.
//
// A Campaign owns a plan (stage 1), runs it through an Engine against a
// measurement function (stage 2), captures metadata, and can persist the
// whole bundle -- plan.csv, results.csv, metadata.txt -- to a directory so
// the analysis (stage 3) can happen offline, later, by someone else.

#include <optional>
#include <string>

#include "core/design.hpp"
#include "core/engine.hpp"
#include "core/metadata.hpp"
#include "core/partition.hpp"
#include "core/record.hpp"
#include "core/record_sink.hpp"

namespace cal {

/// Durable raw-result formats a campaign bundle can archive.
///   kCsv -- one plain results.csv (human-greppable, the paper's own
///           interchange; parsing cost is paid on every re-analysis);
///   kBbx -- the binary sharded columnar archive of io::archive
///           (compressed blocks, checksums, parallel readback).
enum class ArchiveFormat { kCsv, kBbx };

/// Display / flag form ("csv" | "bbx").
const char* to_string(ArchiveFormat format) noexcept;

/// Parses a --archive-format flag value; nullopt when unrecognized.
std::optional<ArchiveFormat> parse_archive_format(const std::string& text);

/// How a campaign bundle persists its raw records.
struct ArchiveOptions {
  ArchiveFormat format = ArchiveFormat::kCsv;
  /// bbx only: shard files per bundle (blocks round-robin over them).
  std::size_t shards = 1;
  /// bbx only: records per columnar block.
  std::size_t block_records = 4096;
};

/// Everything a finished campaign produced.
struct CampaignResult {
  Plan plan;
  RawTable table;
  Metadata metadata;

  /// Writes plan.csv, metadata.txt and the raw results (results.csv or a
  /// bbx shard set, per `archive`) under `dir` (created if missing).
  void write_dir(const std::string& dir,
                 const ArchiveOptions& archive = {}) const;

  /// Reads a bundle back, auto-detecting the results format: a
  /// results.csv is read as CSV, else a manifest.bbx.json as bbx.
  static CampaignResult read_dir(const std::string& dir);
};

/// What a streamed campaign leaves in memory: the plan and the capture
/// metadata.  The raw records themselves went to the RecordSink and are
/// only as resident as the sink chose to keep them.
struct StreamedCampaign {
  Plan plan;
  Metadata metadata;
};

class Campaign {
 public:
  Campaign(Plan plan, Engine engine, Metadata metadata);

  /// Runs the campaign in white-box mode.  With a parallel engine the
  /// shared callable must be thread-safe; stateful measurements should
  /// use the factory overload (one callable per worker).  Threading is
  /// the engine's: set Engine::Options::threads for a per-call pool, or
  /// Engine::Options::pool to share one long-lived core::WorkerPool
  /// across many campaigns (recorded in the metadata as `worker_pool`).
  CampaignResult run(const MeasureFn& measure) const;
  CampaignResult run(const MeasureFactory& factory) const;

  /// Streaming mode: raw records flow to `sink` in plan-ordered batches
  /// (see Engine::run with a RecordSink) instead of accumulating in a
  /// RawTable.  Use for campaigns too large to hold resident; the sink's
  /// archive is byte-identical to what CampaignResult::write_dir would
  /// have written as results.csv.
  StreamedCampaign run(const MeasureFn& measure, RecordSink& sink) const;
  StreamedCampaign run(const MeasureFactory& factory, RecordSink& sink) const;

  /// Convenience streaming bundle: writes plan.csv and metadata.txt under
  /// `dir` (created if missing) and streams the raw results there --
  /// through an io::CsvStreamSink or an io::archive::BbxWriter depending
  /// on `archive.format` -- producing a read_dir-compatible bundle
  /// without ever materializing the table.  Finalization is atomic:
  /// every bundle file is staged under a `*.tmp` name and renamed only
  /// on success (metadata.txt last, as the completeness marker), so a
  /// crashed campaign never leaves a bundle that read_dir mistakes for a
  /// complete one.
  StreamedCampaign run_to_dir(const MeasureFactory& factory,
                              const std::string& dir,
                              const ArchiveOptions& archive = {}) const;

  /// Distributed-campaign building block: executes one PlanPartition of
  /// the plan and streams it into a bbx *partial bundle* at `dir` --
  /// blocks on their global round-robin shards, partition provenance in
  /// the manifest extras -- which io::archive::bbx_merge later
  /// concatenates with its siblings into a bundle byte-identical to a
  /// single-process run_to_dir of the same plan, seed, and archive
  /// options.  Requires ArchiveFormat::kBbx, Engine Options::clock ==
  /// Clock::kIndexed (a partition cannot know how long the rest of the
  /// plan took), and a partition whose first_run is a multiple of
  /// archive.block_records (use partition_plan); throws
  /// std::invalid_argument otherwise.
  StreamedCampaign run_partition_to_dir(const MeasureFactory& factory,
                                        const std::string& dir,
                                        const PlanPartition& partition,
                                        const ArchiveOptions& archive) const;

  const Plan& plan() const noexcept { return plan_; }
  const Metadata& metadata() const noexcept { return metadata_; }

 private:
  /// Metadata stamped onto every finished campaign (plan size and seed,
  /// resolved worker count, streamed flag).
  Metadata finished_metadata(bool streamed) const;

  /// Appends the last run's execution telemetry (per-window wall-clock,
  /// worker-pool occupancy) to `md`.  Only meaningful *after* a run;
  /// the pre-run manifest stamping of run_to_dir skips it.
  void stamp_window_stats(Metadata& md) const;

  Plan plan_;
  Engine engine_;
  Metadata metadata_;
  /// Collector the constructor attaches to engine_, so every campaign
  /// run records window telemetry into its bundle metadata.
  std::shared_ptr<WindowStats> window_stats_;
};

}  // namespace cal
