#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "simd/kernels.hpp"

namespace cal::simd {

namespace {

const Kernels kScalarTable = {
    detail::delta_varint_decode_scalar,
    detail::crc32_scalar,
    detail::lz_match_copy_scalar,
    detail::f64le_decode_scalar,
    detail::cmp_mask_f64_scalar,
    detail::cmp_mask_i64_scalar,
    detail::welford_fold_scalar,
    detail::mask_and_scalar,
    detail::mask_or_scalar,
    detail::mask_not_scalar,
    detail::mask_count_scalar,
};

const Kernels kSse42Table = {
    detail::delta_varint_decode_sse42,
    detail::crc32_slice8,
    detail::lz_match_copy_chunked,
    detail::f64le_decode_bulk,
    detail::cmp_mask_f64_sse42,
    detail::cmp_mask_i64_sse42,
    detail::welford_fold_sse42,
    detail::mask_and_sse42,
    detail::mask_or_sse42,
    detail::mask_not_sse42,
    detail::mask_count_sse42,
};

/// Assembled at startup: avx2 everywhere, but the CLMUL CRC only when
/// the CPU actually has PCLMULQDQ (AVX2 does not imply it).
Kernels make_avx2_table(bool have_pclmul) {
  Kernels k = {
      detail::delta_varint_decode_avx2,
      have_pclmul ? detail::crc32_clmul : detail::crc32_slice8,
      detail::lz_match_copy_chunked,
      detail::f64le_decode_bulk,
      detail::cmp_mask_f64_avx2,
      detail::cmp_mask_i64_avx2,
      detail::welford_fold_avx2,
      detail::mask_and_avx2,
      detail::mask_or_avx2,
      detail::mask_not_avx2,
      detail::mask_count_avx2,
  };
  return k;
}

Level probe_best() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Level::kSse42;
#endif
  return Level::kScalar;
}

Level clamp(Level level) noexcept {
  return static_cast<int>(level) > static_cast<int>(best_supported())
             ? best_supported()
             : level;
}

const Kernels& table_for(Level level) noexcept {
  static const Kernels avx2_table = make_avx2_table(
#if defined(__x86_64__) || defined(__i386__)
      __builtin_cpu_supports("pclmul")
#else
      false
#endif
  );
  switch (level) {
    case Level::kScalar: return kScalarTable;
    case Level::kSse42: return kSse42Table;
    case Level::kAvx2: return avx2_table;
  }
  return kScalarTable;
}

Level initial_level() noexcept {
  const char* env = std::getenv("CAL_SIMD");
  Level level = best_supported();
  if (env != nullptr) {
    Level parsed = Level::kScalar;
    if (parse_level(env, &parsed)) level = clamp(parsed);
    // An unknown CAL_SIMD value falls back to the probed best rather
    // than failing: the variable is a testing knob, not config.
  }
  return level;
}

std::atomic<const Kernels*>& active_table() noexcept {
  static std::atomic<const Kernels*> table{&table_for(initial_level())};
  return table;
}

std::atomic<Level>& active_level_state() noexcept {
  static std::atomic<Level> level{initial_level()};
  return level;
}

}  // namespace

const char* to_string(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse42: return "sse42";
    case Level::kAvx2: return "avx2";
  }
  return "?";
}

bool parse_level(const std::string& name, Level* out) noexcept {
  if (name == "scalar") { *out = Level::kScalar; return true; }
  if (name == "sse42") { *out = Level::kSse42; return true; }
  if (name == "avx2") { *out = Level::kAvx2; return true; }
  return false;
}

Level best_supported() noexcept {
  static const Level best = probe_best();
  return best;
}

Level active_level() noexcept {
  return active_level_state().load(std::memory_order_acquire);
}

void set_level(Level level) noexcept {
  const Level clamped = clamp(level);
  active_level_state().store(clamped, std::memory_order_release);
  active_table().store(&table_for(clamped), std::memory_order_release);
}

const Kernels& kernels() noexcept {
  return *active_table().load(std::memory_order_acquire);
}

const Kernels& kernels_at(Level level) noexcept {
  return table_for(clamp(level));
}

}  // namespace cal::simd
