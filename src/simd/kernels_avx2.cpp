// AVX2 kernel tier: 32-byte varint scanning, PCLMULQDQ-folded CRC-32
// (the Intel "Fast CRC Computation Using PCLMULQDQ" reduction over the
// reflected IEEE polynomial), 4-lane compare kernels, and 32-byte mask
// combinators.  Compiled with -mavx2 -mpclmul -ffp-contract=off.

#include <bit>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "simd/kernels.hpp"

namespace cal::simd::detail {

#if defined(__AVX2__)

std::size_t delta_varint_decode_avx2(const unsigned char* data,
                                     std::size_t size, std::size_t n,
                                     std::uint64_t* out) {
  std::size_t pos = 0, i = 0;
  std::int64_t prev = 0;
  while (i < n) {
    if (size - pos >= 32) {
      const __m256i chunk =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + pos));
      const std::uint32_t cont =
          static_cast<std::uint32_t>(_mm256_movemask_epi8(chunk));
      const std::size_t run = cont == 0 ? 32 : std::countr_zero(cont);
      const std::size_t take = run < n - i ? run : n - i;
      for (std::size_t j = 0; j < take; ++j) {
        prev += unzigzag(data[pos + j]);
        out[i + j] = static_cast<std::uint64_t>(prev);
      }
      pos += take;
      i += take;
      if (i == n) break;
      if (run == 32) continue;
      std::uint64_t v = 0;
      const std::size_t used = decode_one_varint(data + pos, size - pos, &v);
      if (used == 0) return kDecodeError;
      pos += used;
      prev += unzigzag(v);
      out[i++] = static_cast<std::uint64_t>(prev);
      continue;
    }
    std::uint64_t v = 0;
    const std::size_t used = decode_one_varint(data + pos, size - pos, &v);
    if (used == 0) return kDecodeError;
    pos += used;
    prev += unzigzag(v);
    out[i++] = static_cast<std::uint64_t>(prev);
  }
  return pos;
}

#if defined(__PCLMUL__)

namespace {

// Folding constants for the reflected IEEE polynomial (Intel CLMUL
// whitepaper; the layout zlib's crc32_simd uses): k1/k2 fold 64 bytes,
// k3/k4 fold 16, k5 reduces 96->64 bits, then a Barrett reduction with
// mu and the polynomial produces the 32-bit remainder.
const std::uint64_t kK1K2[2] = {0x0154442bd4, 0x01c6e41596};
const std::uint64_t kK3K4[2] = {0x01751997d0, 0x00ccaa009e};
const std::uint64_t kK5K0[2] = {0x0163cd6124, 0x0000000000};
const std::uint64_t kPoly[2] = {0x01db710641, 0x01f7011641};

/// CLMUL body over a multiple-of-16, >= 64 byte buffer.  Takes and
/// returns the *raw* (pre/post-conditioned) CRC state.
std::uint32_t crc32_clmul_raw(const unsigned char* buf, std::size_t len,
                              std::uint32_t crc) {
  __m128i x0, x1, x2, x3, x4, x5;

  x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
  x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 16));
  x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 32));
  x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 48));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  x0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK1K2));
  buf += 64;
  len -= 64;

  // Parallel fold, four 16-byte stripes at a time.
  while (len >= 64) {
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(x1, _mm_loadu_si128(
                               reinterpret_cast<const __m128i*>(buf)));
    x1 = _mm_xor_si128(x1, x5);
    x5 = _mm_clmulepi64_si128(x2, x0, 0x00);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
    x2 = _mm_xor_si128(x2, _mm_loadu_si128(
                               reinterpret_cast<const __m128i*>(buf + 16)));
    x2 = _mm_xor_si128(x2, x5);
    x5 = _mm_clmulepi64_si128(x3, x0, 0x00);
    x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
    x3 = _mm_xor_si128(x3, _mm_loadu_si128(
                               reinterpret_cast<const __m128i*>(buf + 32)));
    x3 = _mm_xor_si128(x3, x5);
    x5 = _mm_clmulepi64_si128(x4, x0, 0x00);
    x4 = _mm_clmulepi64_si128(x4, x0, 0x11);
    x4 = _mm_xor_si128(x4, _mm_loadu_si128(
                               reinterpret_cast<const __m128i*>(buf + 48)));
    x4 = _mm_xor_si128(x4, x5);
    buf += 64;
    len -= 64;
  }

  // Fold the four stripes into one.
  x0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK3K4));
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(x1, x2);
  x1 = _mm_xor_si128(x1, x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(x1, x3);
  x1 = _mm_xor_si128(x1, x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(x1, x4);
  x1 = _mm_xor_si128(x1, x5);

  // Remaining whole 16-byte chunks.
  while (len >= 16) {
    x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(x1, x2);
    x1 = _mm_xor_si128(x1, x5);
    buf += 16;
    len -= 16;
  }

  // 128 -> 64 bits.
  x2 = _mm_clmulepi64_si128(x1, x0, 0x10);
  x3 = _mm_setr_epi32(~0, 0, ~0, 0);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x2);
  x0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(kK5K0));
  x2 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, x3);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);

  // Barrett reduction to 32 bits.
  x0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(kPoly));
  x2 = _mm_and_si128(x1, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x10);
  x2 = _mm_and_si128(x2, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);
  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

}  // namespace

std::uint32_t crc32_clmul(const void* data, std::size_t size,
                          std::uint32_t seed) {
  // The folded body needs >= 64 bytes and eats whole 16-byte chunks;
  // route the rest (small buffers, tails) through slice-by-8.
  if (size < 64) return crc32_slice8(data, size, seed);
  const auto* p = static_cast<const unsigned char*>(data);
  const std::size_t folded = size & ~static_cast<std::size_t>(15);
  std::uint32_t raw = seed ^ 0xFFFFFFFFu;
  raw = crc32_clmul_raw(p, folded, raw);
  return crc32_slice8(p + folded, size - folded, raw ^ 0xFFFFFFFFu);
}

#else  // !__PCLMUL__

std::uint32_t crc32_clmul(const void* data, std::size_t size,
                          std::uint32_t seed) {
  return crc32_slice8(data, size, seed);
}

#endif  // __PCLMUL__

namespace {

template <bool refine, int imm>
inline void cmp_mask_f64_loop(const void* values, std::size_t n, Cmp op,
                              double lit, char* mask) {
  const auto* p = static_cast<const unsigned char*>(values);
  const __m256d vlit = _mm256_set1_pd(lit);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v =
        _mm256_loadu_pd(reinterpret_cast<const double*>(p + 8 * i));
    const int m = _mm256_movemask_pd(_mm256_cmp_pd(v, vlit, imm));
    for (int j = 0; j < 4; ++j) {
      if constexpr (refine) {
        mask[i + j] &= static_cast<char>((m >> j) & 1);
      } else {
        mask[i + j] = static_cast<char>((m >> j) & 1);
      }
    }
  }
  for (; i < n; ++i) {
    if (refine && !mask[i]) continue;
    double v = 0.0;
    std::memcpy(&v, p + 8 * i, sizeof(double));
    mask[i] = cmp_f64(v, op, lit);
  }
}

template <bool refine>
inline void cmp_mask_f64_dispatch(const void* values, std::size_t n, Cmp op,
                                  double lit, char* mask) {
  // Ordered compares are false on NaN (value_compare semantics); kNe is
  // the one unordered-true op.
  switch (op) {
    case Cmp::kEq:
      cmp_mask_f64_loop<refine, _CMP_EQ_OQ>(values, n, op, lit, mask);
      return;
    case Cmp::kNe:
      cmp_mask_f64_loop<refine, _CMP_NEQ_UQ>(values, n, op, lit, mask);
      return;
    case Cmp::kLt:
      cmp_mask_f64_loop<refine, _CMP_LT_OQ>(values, n, op, lit, mask);
      return;
    case Cmp::kLe:
      cmp_mask_f64_loop<refine, _CMP_LE_OQ>(values, n, op, lit, mask);
      return;
    case Cmp::kGt:
      cmp_mask_f64_loop<refine, _CMP_GT_OQ>(values, n, op, lit, mask);
      return;
    case Cmp::kGe:
      cmp_mask_f64_loop<refine, _CMP_GE_OQ>(values, n, op, lit, mask);
      return;
  }
}

template <bool refine>
inline void cmp_mask_i64_impl(const std::int64_t* values, std::size_t n,
                              Cmp op, std::int64_t lit, char* mask) {
  const __m256i vlit = _mm256_set1_epi64x(lit);
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    __m256i r;
    switch (op) {
      case Cmp::kEq: r = _mm256_cmpeq_epi64(v, vlit); break;
      case Cmp::kNe:
        r = _mm256_xor_si256(_mm256_cmpeq_epi64(v, vlit), ones);
        break;
      case Cmp::kGt: r = _mm256_cmpgt_epi64(v, vlit); break;
      case Cmp::kLe:
        r = _mm256_xor_si256(_mm256_cmpgt_epi64(v, vlit), ones);
        break;
      case Cmp::kLt: r = _mm256_cmpgt_epi64(vlit, v); break;
      case Cmp::kGe:
        r = _mm256_xor_si256(_mm256_cmpgt_epi64(vlit, v), ones);
        break;
      default: r = _mm256_setzero_si256(); break;
    }
    const int m = _mm256_movemask_pd(_mm256_castsi256_pd(r));
    for (int j = 0; j < 4; ++j) {
      if constexpr (refine) {
        mask[i + j] &= static_cast<char>((m >> j) & 1);
      } else {
        mask[i + j] = static_cast<char>((m >> j) & 1);
      }
    }
  }
  for (; i < n; ++i) {
    if (refine && !mask[i]) continue;
    mask[i] = cmp_i64(values[i], op, lit);
  }
}

}  // namespace

void cmp_mask_f64_avx2(const void* values, std::size_t n, Cmp op,
                       double lit, char* mask, bool refine) {
  if (refine) {
    cmp_mask_f64_dispatch<true>(values, n, op, lit, mask);
  } else {
    cmp_mask_f64_dispatch<false>(values, n, op, lit, mask);
  }
}

void cmp_mask_i64_avx2(const std::int64_t* values, std::size_t n, Cmp op,
                       std::int64_t lit, char* mask, bool refine) {
  if (refine) {
    cmp_mask_i64_impl<true>(values, n, op, lit, mask);
  } else {
    cmp_mask_i64_impl<false>(values, n, op, lit, mask);
  }
}

void welford_fold_avx2(const double* values, const char* mask,
                       std::size_t n, WelfordBatch* acc) {
  if (mask == nullptr) {
    welford_fold_scalar(values, nullptr, n, acc);
    return;
  }
  // Vectorized skipping only: one testz answers "any survivor in these
  // 32 records"; survivors fold through the exact scalar recurrence in
  // index order, so the result is bit-identical at every level.
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    if (_mm256_testz_si256(m, m)) continue;
    for (std::size_t j = 0; j < 32; ++j) {
      if (mask[i + j]) welford_push(*acc, values[i + j]);
    }
  }
  for (; i < n; ++i) {
    if (mask[i]) welford_push(*acc, values[i]);
  }
}

void mask_and_avx2(char* dst, const char* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(a, b));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void mask_or_avx2(char* dst, const char* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void mask_not_avx2(char* mask, std::size_t n) {
  std::size_t i = 0;
  const __m256i one = _mm256_set1_epi8(1);
  for (; i + 32 <= n; i += 32) {
    const __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mask + i),
                        _mm256_xor_si256(m, one));
  }
  for (; i < n; ++i) mask[i] = !mask[i];
}

std::size_t mask_count_avx2(const char* mask, std::size_t n) {
  std::size_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  for (; i + 32 <= n; i += 32) {
    const __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(m, zero));
  }
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t count = static_cast<std::size_t>(lanes[0] + lanes[1] +
                                               lanes[2] + lanes[3]);
  for (; i < n; ++i) count += mask[i] != 0;
  return count;
}

#else  // !__AVX2__: the tier still links, delegating down.

std::size_t delta_varint_decode_avx2(const unsigned char* data,
                                     std::size_t size, std::size_t n,
                                     std::uint64_t* out) {
  return delta_varint_decode_sse42(data, size, n, out);
}
std::uint32_t crc32_clmul(const void* data, std::size_t size,
                          std::uint32_t seed) {
  return crc32_slice8(data, size, seed);
}
void cmp_mask_f64_avx2(const void* values, std::size_t n, Cmp op,
                       double lit, char* mask, bool refine) {
  cmp_mask_f64_sse42(values, n, op, lit, mask, refine);
}
void cmp_mask_i64_avx2(const std::int64_t* values, std::size_t n, Cmp op,
                       std::int64_t lit, char* mask, bool refine) {
  cmp_mask_i64_sse42(values, n, op, lit, mask, refine);
}
void welford_fold_avx2(const double* values, const char* mask,
                       std::size_t n, WelfordBatch* acc) {
  welford_fold_sse42(values, mask, n, acc);
}
void mask_and_avx2(char* dst, const char* src, std::size_t n) {
  mask_and_sse42(dst, src, n);
}
void mask_or_avx2(char* dst, const char* src, std::size_t n) {
  mask_or_sse42(dst, src, n);
}
void mask_not_avx2(char* mask, std::size_t n) { mask_not_sse42(mask, n); }
std::size_t mask_count_avx2(const char* mask, std::size_t n) {
  return mask_count_sse42(mask, n);
}

#endif  // __AVX2__

}  // namespace cal::simd::detail
