#pragma once
// Runtime-dispatched SIMD kernel layer for the bbx read path.
//
// The hot loops of the archive and the query engine -- varint
// zigzag-delta decode, LZ match copy, CRC-32, f64 column decode,
// predicate compare loops, Welford folds -- run through a table of
// function pointers selected once at startup by CPUID probe:
//
//   scalar   faithful ports of the original byte-at-a-time loops
//   sse42    16-byte varint scanning, slice-by-8 CRC, chunked copies
//   avx2     32-byte variants plus PCLMULQDQ-folded CRC and vector
//            compare kernels
//
// The invariant that keeps the tiers honest: every kernel produces
// byte-identical output at every level.  Integer kernels are exact by
// construction; the floating-point kernels either perform no arithmetic
// (compares, f64 decode) or keep the exact scalar IEEE recurrence and
// vectorize only the skipping of masked-off runs (welford_fold).  The
// kernel translation units are compiled with -ffp-contract=off so no
// tier silently fuses a multiply-add the others do not.
//
// `CAL_SIMD=scalar|sse42|avx2` pins the level from the environment
// (clamped to what the CPU supports); set_level() is the same hook
// in-process for tests and benchmarks.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace cal::simd {

enum class Level : int { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

const char* to_string(Level level) noexcept;

/// Parses "scalar" / "sse42" / "avx2" (the CAL_SIMD vocabulary).
bool parse_level(const std::string& name, Level* out) noexcept;

/// Comparison ops of the compare kernels.  Doubles follow IEEE
/// semantics -- every op except kNe is false when either side is NaN --
/// and int64 compares are exact: the unboxed mirror of
/// query::value_compare on numeric values.
enum class Cmp : int { kEq = 0, kNe, kLt, kLe, kGt, kGe };

/// Running Welford + extrema state of one fold.  Merging partials stays
/// the caller's business (stats::Welford::merge in plan order).
struct WelfordBatch {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

/// Returned by delta_varint_decode on truncated or malformed input.
inline constexpr std::size_t kDecodeError = static_cast<std::size_t>(-1);

struct Kernels {
  /// Decodes `n` zigzag-delta varints from `data[0, size)`, prefix-sums
  /// them, and stores the running value's two's-complement bit pattern
  /// in out[0, n).  Returns bytes consumed, or kDecodeError on
  /// truncated, over-long (> 10 byte), or non-canonically terminated
  /// input -- exactly the inputs ByteReader::varint rejects.
  std::size_t (*delta_varint_decode)(const unsigned char* data,
                                     std::size_t size, std::size_t n,
                                     std::uint64_t* out);

  /// CRC-32 (IEEE 802.3, reflected 0xEDB88320), chainable: pass the
  /// previous call's return as `seed` (0 starts a fresh checksum).
  std::uint32_t (*crc32)(const void* data, std::size_t size,
                         std::uint32_t seed);

  /// LZ back-reference: dst[i] = dst[i - offset] for i in [0, len),
  /// with byte-replication semantics when offset < len.  The caller
  /// guarantees offset >= 1, the source range starts inside the buffer,
  /// and len bytes are writable at dst.
  void (*lz_match_copy)(char* dst, std::size_t offset, std::size_t len);

  /// Decodes n little-endian f64 values from an unaligned byte stream.
  void (*f64le_decode)(const void* src, std::size_t n, double* out);

  /// mask[i] = (values[i] op lit) over unaligned LE doubles.  With
  /// `refine`, only still-set entries are tested (cleared on mismatch).
  /// Mask bytes are strictly 0/1.
  void (*cmp_mask_f64)(const void* values, std::size_t n, Cmp op,
                       double lit, char* mask, bool refine);
  void (*cmp_mask_i64)(const std::int64_t* values, std::size_t n, Cmp op,
                       std::int64_t lit, char* mask, bool refine);

  /// Folds values[i] (where mask[i]; all records when mask == nullptr)
  /// into `acc` in index order with the exact scalar Welford + extrema
  /// recurrence.  The arithmetic is identical at every level; vector
  /// units only skip masked-off runs, so results are bit-identical
  /// across levels by construction.
  void (*welford_fold)(const double* values, const char* mask,
                       std::size_t n, WelfordBatch* acc);

  /// 0/1 mask combinators (dst op= src) and population count.
  void (*mask_and)(char* dst, const char* src, std::size_t n);
  void (*mask_or)(char* dst, const char* src, std::size_t n);
  void (*mask_not)(char* mask, std::size_t n);
  std::size_t (*mask_count)(const char* mask, std::size_t n);
};

/// Best level this CPU supports (CPUID probe, cached).
Level best_supported() noexcept;

/// Level of the currently active kernel table.  Initialized on first
/// use to best_supported(), or to CAL_SIMD when set in the environment.
Level active_level() noexcept;

/// Test/bench hook: swaps the active kernel table (clamped to
/// best_supported()).  Not synchronized against concurrent kernel use;
/// call between scans.
void set_level(Level level) noexcept;

/// The active kernel table.
const Kernels& kernels() noexcept;

/// A specific level's table, clamped to best_supported() -- lets tests
/// and benchmarks compare levels without touching the process state.
const Kernels& kernels_at(Level level) noexcept;

}  // namespace cal::simd
