// SSE4.2 kernel tier: 16-byte continuation-bit scanning for varint
// runs, slice-by-8 CRC-32, chunked LZ match copies, and bulk f64 column
// decode.  Compiled with -msse4.2 -ffp-contract=off (see CMakeLists).

#include <bit>
#include <cstring>

#if defined(__SSE4_2__)
#include <emmintrin.h>
#include <smmintrin.h>
#endif

#include "simd/kernels.hpp"

namespace cal::simd::detail {

#if defined(__SSE4_2__)

std::size_t delta_varint_decode_sse42(const unsigned char* data,
                                      std::size_t size, std::size_t n,
                                      std::uint64_t* out) {
  std::size_t pos = 0, i = 0;
  std::int64_t prev = 0;
  while (i < n) {
    if (size - pos >= 16) {
      // One movemask answers "where are the varint terminators" for 16
      // bytes at once.  Plan-ordered sequence and small cell/replicate
      // deltas are almost always single-byte varints, so the common
      // case is a full run of 16 one-byte values.
      const __m128i chunk =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
      const std::uint32_t cont =
          static_cast<std::uint32_t>(_mm_movemask_epi8(chunk));
      const std::size_t run = cont == 0 ? 16 : std::countr_zero(cont);
      const std::size_t take = run < n - i ? run : n - i;
      for (std::size_t j = 0; j < take; ++j) {
        prev += unzigzag(data[pos + j]);
        out[i + j] = static_cast<std::uint64_t>(prev);
      }
      pos += take;
      i += take;
      if (i == n) break;
      if (run == 16) continue;
      // The run ended at a multi-byte varint: decode it with the full
      // canonicality checks, then rescan.
      std::uint64_t v = 0;
      const std::size_t used = decode_one_varint(data + pos, size - pos, &v);
      if (used == 0) return kDecodeError;
      pos += used;
      prev += unzigzag(v);
      out[i++] = static_cast<std::uint64_t>(prev);
      continue;
    }
    std::uint64_t v = 0;
    const std::size_t used = decode_one_varint(data + pos, size - pos, &v);
    if (used == 0) return kDecodeError;
    pos += used;
    prev += unzigzag(v);
    out[i++] = static_cast<std::uint64_t>(prev);
  }
  return pos;
}

#endif  // __SSE4_2__

namespace {

struct Slice8Tables {
  std::uint32_t t[8][256];
};

Slice8Tables make_slice8() {
  Slice8Tables s{};
  const std::array<std::uint32_t, 256>& base = crc32_byte_table();
  for (int i = 0; i < 256; ++i) s.t[0][i] = base[i];
  for (int k = 1; k < 8; ++k) {
    for (int i = 0; i < 256; ++i) {
      const std::uint32_t c = s.t[k - 1][i];
      s.t[k][i] = s.t[0][c & 0xffu] ^ (c >> 8);
    }
  }
  return s;
}

const Slice8Tables& slice8() {
  static const Slice8Tables tables = make_slice8();
  return tables;
}

inline std::uint32_t load_u32le(const unsigned char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, 4);
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap32(v);
  }
  return v;
}

}  // namespace

std::uint32_t crc32_slice8(const void* data, std::size_t size,
                           std::uint32_t seed) {
  const Slice8Tables& s = slice8();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  while (size >= 8) {
    const std::uint32_t lo = load_u32le(p) ^ c;
    const std::uint32_t hi = load_u32le(p + 4);
    c = s.t[7][lo & 0xffu] ^ s.t[6][(lo >> 8) & 0xffu] ^
        s.t[5][(lo >> 16) & 0xffu] ^ s.t[4][lo >> 24] ^
        s.t[3][hi & 0xffu] ^ s.t[2][(hi >> 8) & 0xffu] ^
        s.t[1][(hi >> 16) & 0xffu] ^ s.t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size--) c = s.t[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void lz_match_copy_chunked(char* dst, std::size_t offset, std::size_t len) {
  if (offset >= len) {
    // Non-overlapping: one straight copy.
    std::memcpy(dst, dst - offset, len);
    return;
  }
  // Overlapping back-reference: the match replicates a period-`offset`
  // pattern.  Seed one period, then double the filled prefix -- each
  // copy's source and destination are disjoint, and every copy starts
  // at a multiple of the period, so replication semantics are
  // preserved while copies run chunk-at-a-time.
  std::memcpy(dst, dst - offset, offset);
  std::size_t filled = offset;
  while (filled < len) {
    const std::size_t chunk = filled < len - filled ? filled : len - filled;
    std::memcpy(dst + filled, dst, chunk);
    filled += chunk;
  }
}

void f64le_decode_bulk(const void* src, std::size_t n, double* out) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, src, n * sizeof(double));
  } else {
    f64le_decode_scalar(src, n, out);
  }
}

#if defined(__SSE4_2__)

namespace {

template <bool refine, typename CmpFn>
inline void cmp_mask_f64_loop(const void* values, std::size_t n, Cmp op,
                              double lit, char* mask, CmpFn&& vec_cmp) {
  const auto* p = static_cast<const unsigned char*>(values);
  const __m128d vlit = _mm_set1_pd(lit);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v =
        _mm_loadu_pd(reinterpret_cast<const double*>(p + 8 * i));
    const int m = _mm_movemask_pd(vec_cmp(v, vlit));
    if constexpr (refine) {
      mask[i] &= static_cast<char>(m & 1);
      mask[i + 1] &= static_cast<char>((m >> 1) & 1);
    } else {
      mask[i] = static_cast<char>(m & 1);
      mask[i + 1] = static_cast<char>((m >> 1) & 1);
    }
  }
  for (; i < n; ++i) {
    if (refine && !mask[i]) continue;
    double v = 0.0;
    std::memcpy(&v, p + 8 * i, sizeof(double));
    mask[i] = cmp_f64(v, op, lit);
  }
}

template <bool refine>
inline void cmp_mask_f64_dispatch(const void* values, std::size_t n, Cmp op,
                                  double lit, char* mask) {
  switch (op) {
    case Cmp::kEq:
      cmp_mask_f64_loop<refine>(values, n, op, lit, mask,
                                [](__m128d a, __m128d b) {
                                  return _mm_cmpeq_pd(a, b);
                                });
      return;
    case Cmp::kNe:
      cmp_mask_f64_loop<refine>(values, n, op, lit, mask,
                                [](__m128d a, __m128d b) {
                                  return _mm_cmpneq_pd(a, b);
                                });
      return;
    case Cmp::kLt:
      cmp_mask_f64_loop<refine>(values, n, op, lit, mask,
                                [](__m128d a, __m128d b) {
                                  return _mm_cmplt_pd(a, b);
                                });
      return;
    case Cmp::kLe:
      cmp_mask_f64_loop<refine>(values, n, op, lit, mask,
                                [](__m128d a, __m128d b) {
                                  return _mm_cmple_pd(a, b);
                                });
      return;
    case Cmp::kGt:
      cmp_mask_f64_loop<refine>(values, n, op, lit, mask,
                                [](__m128d a, __m128d b) {
                                  return _mm_cmpgt_pd(a, b);
                                });
      return;
    case Cmp::kGe:
      cmp_mask_f64_loop<refine>(values, n, op, lit, mask,
                                [](__m128d a, __m128d b) {
                                  return _mm_cmpge_pd(a, b);
                                });
      return;
  }
}

}  // namespace

void cmp_mask_f64_sse42(const void* values, std::size_t n, Cmp op,
                        double lit, char* mask, bool refine) {
  if (refine) {
    cmp_mask_f64_dispatch<true>(values, n, op, lit, mask);
  } else {
    cmp_mask_f64_dispatch<false>(values, n, op, lit, mask);
  }
}

void cmp_mask_i64_sse42(const std::int64_t* values, std::size_t n, Cmp op,
                        std::int64_t lit, char* mask, bool refine) {
  // Two lanes of epi64 compare barely beat the scalar loop; keep the
  // exact reference semantics and let the avx2 tier carry the win.
  cmp_mask_i64_scalar(values, n, op, lit, mask, refine);
}

void welford_fold_sse42(const double* values, const char* mask,
                        std::size_t n, WelfordBatch* acc) {
  if (mask == nullptr) {
    welford_fold_scalar(values, nullptr, n, acc);
    return;
  }
  // Vectorized only in the skipping: 16 mask bytes are tested at once,
  // surviving elements still fold through the exact scalar recurrence
  // in index order (bit-identity across levels).
  std::size_t i = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; i + 16 <= n; i += 16) {
    const __m128i m =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(m, zero)) == 0xFFFF) continue;
    for (std::size_t j = 0; j < 16; ++j) {
      if (mask[i + j]) welford_push(*acc, values[i + j]);
    }
  }
  for (; i < n; ++i) {
    if (mask[i]) welford_push(*acc, values[i]);
  }
}

void mask_and_sse42(char* dst, const char* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_and_si128(a, b));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void mask_or_sse42(char* dst, const char* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_or_si128(a, b));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void mask_not_sse42(char* mask, std::size_t n) {
  // Mask bytes are strictly 0/1 (kernel contract), so NOT is XOR 1.
  std::size_t i = 0;
  const __m128i one = _mm_set1_epi8(1);
  for (; i + 16 <= n; i += 16) {
    const __m128i m =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(mask + i),
                     _mm_xor_si128(m, one));
  }
  for (; i < n; ++i) mask[i] = !mask[i];
}

std::size_t mask_count_sse42(const char* mask, std::size_t n) {
  std::size_t count = 0;
  std::size_t i = 0;
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = zero;
  for (; i + 16 <= n; i += 16) {
    const __m128i m =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask + i));
    // psadbw sums 0/1 bytes into two u16 lanes without overflow for
    // any realistic block length.
    acc = _mm_add_epi64(acc, _mm_sad_epu8(m, zero));
  }
  count += static_cast<std::size_t>(_mm_extract_epi64(acc, 0)) +
           static_cast<std::size_t>(_mm_extract_epi64(acc, 1));
  for (; i < n; ++i) count += mask[i] != 0;
  return count;
}

#else  // !__SSE4_2__: the tier still links, delegating to scalar.

std::size_t delta_varint_decode_sse42(const unsigned char* data,
                                      std::size_t size, std::size_t n,
                                      std::uint64_t* out) {
  return delta_varint_decode_scalar(data, size, n, out);
}
void cmp_mask_f64_sse42(const void* values, std::size_t n, Cmp op,
                        double lit, char* mask, bool refine) {
  cmp_mask_f64_scalar(values, n, op, lit, mask, refine);
}
void cmp_mask_i64_sse42(const std::int64_t* values, std::size_t n, Cmp op,
                        std::int64_t lit, char* mask, bool refine) {
  cmp_mask_i64_scalar(values, n, op, lit, mask, refine);
}
void welford_fold_sse42(const double* values, const char* mask,
                        std::size_t n, WelfordBatch* acc) {
  welford_fold_scalar(values, mask, n, acc);
}
void mask_and_sse42(char* dst, const char* src, std::size_t n) {
  mask_and_scalar(dst, src, n);
}
void mask_or_sse42(char* dst, const char* src, std::size_t n) {
  mask_or_scalar(dst, src, n);
}
void mask_not_sse42(char* mask, std::size_t n) { mask_not_scalar(mask, n); }
std::size_t mask_count_sse42(const char* mask, std::size_t n) {
  return mask_count_scalar(mask, n);
}

#endif  // __SSE4_2__

}  // namespace cal::simd::detail
