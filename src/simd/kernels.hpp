#pragma once
// Internal declarations shared by the per-level kernel translation
// units and dispatch.cpp.  Not part of the public simd surface.
//
// The inline helpers here are the single definition of the per-element
// semantics every level must reproduce: one varint's decode rules, one
// IEEE compare, one Welford push.  Each level's vector code reduces to
// calling these on the elements it could not handle wholesale, so the
// byte-identity guarantee falls out of sharing the definitions rather
// than of careful duplication.

#include <array>
#include <cstddef>
#include <cstdint>

#include "simd/dispatch.hpp"

namespace cal::simd::detail {

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Decodes one LEB128 varint from p[0, avail).  Returns bytes consumed,
/// or 0 on truncated / over-long (> 10 byte) / non-canonically
/// terminated input -- the rules ByteReader::varint enforces.
inline std::size_t decode_one_varint(const unsigned char* p,
                                     std::size_t avail, std::uint64_t* out) {
  std::uint64_t v = 0;
  std::size_t i = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (i >= avail) return 0;
    const unsigned char byte = p[i++];
    if (shift == 63 && byte > 1) return 0;  // bits past 2^64 set
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) {
      if (byte == 0 && shift != 0) return 0;  // non-canonical terminator
      *out = v;
      return i;
    }
  }
  return 0;  // continuation bit still set after 10 bytes
}

/// One IEEE double compare: NaN on either side fails everything but kNe.
inline bool cmp_f64(double a, Cmp op, double b) {
  switch (op) {
    case Cmp::kEq: return a == b;
    case Cmp::kNe: return a != b;
    case Cmp::kLt: return a < b;
    case Cmp::kLe: return a <= b;
    case Cmp::kGt: return a > b;
    case Cmp::kGe: return a >= b;
  }
  return false;
}

inline bool cmp_i64(std::int64_t a, Cmp op, std::int64_t b) {
  switch (op) {
    case Cmp::kEq: return a == b;
    case Cmp::kNe: return a != b;
    case Cmp::kLt: return a < b;
    case Cmp::kLe: return a <= b;
    case Cmp::kGt: return a > b;
    case Cmp::kGe: return a >= b;
  }
  return false;
}

/// The exact per-element recurrence of MetricAcc::add + stats::Welford:
/// every level folds surviving elements through this, in index order.
inline void welford_push(WelfordBatch& acc, double x) {
  acc.sum += x;
  acc.min = x < acc.min ? x : acc.min;  // std::min(min, x): NaN keeps min
  acc.max = x > acc.max ? x : acc.max;
  ++acc.n;
  const double delta = x - acc.mean;
  acc.mean += delta / static_cast<double>(acc.n);
  acc.m2 += delta * (x - acc.mean);
}

/// The bytewise IEEE CRC-32 table (lazily built once); the slice-by-8
/// tier derives its wider tables from it.
const std::array<std::uint32_t, 256>& crc32_byte_table();

// --- scalar level (kernels_scalar.cpp): the original byte loops -------------
std::size_t delta_varint_decode_scalar(const unsigned char* data,
                                       std::size_t size, std::size_t n,
                                       std::uint64_t* out);
std::uint32_t crc32_scalar(const void* data, std::size_t size,
                           std::uint32_t seed);
void lz_match_copy_scalar(char* dst, std::size_t offset, std::size_t len);
void f64le_decode_scalar(const void* src, std::size_t n, double* out);
void cmp_mask_f64_scalar(const void* values, std::size_t n, Cmp op,
                         double lit, char* mask, bool refine);
void cmp_mask_i64_scalar(const std::int64_t* values, std::size_t n, Cmp op,
                         std::int64_t lit, char* mask, bool refine);
void welford_fold_scalar(const double* values, const char* mask,
                         std::size_t n, WelfordBatch* acc);
void mask_and_scalar(char* dst, const char* src, std::size_t n);
void mask_or_scalar(char* dst, const char* src, std::size_t n);
void mask_not_scalar(char* mask, std::size_t n);
std::size_t mask_count_scalar(const char* mask, std::size_t n);

// --- sse42 level (kernels_sse42.cpp, -msse4.2) ------------------------------
std::size_t delta_varint_decode_sse42(const unsigned char* data,
                                      std::size_t size, std::size_t n,
                                      std::uint64_t* out);
std::uint32_t crc32_slice8(const void* data, std::size_t size,
                           std::uint32_t seed);
void lz_match_copy_chunked(char* dst, std::size_t offset, std::size_t len);
void f64le_decode_bulk(const void* src, std::size_t n, double* out);
void cmp_mask_f64_sse42(const void* values, std::size_t n, Cmp op,
                        double lit, char* mask, bool refine);
void cmp_mask_i64_sse42(const std::int64_t* values, std::size_t n, Cmp op,
                        std::int64_t lit, char* mask, bool refine);
void welford_fold_sse42(const double* values, const char* mask,
                        std::size_t n, WelfordBatch* acc);
void mask_and_sse42(char* dst, const char* src, std::size_t n);
void mask_or_sse42(char* dst, const char* src, std::size_t n);
void mask_not_sse42(char* mask, std::size_t n);
std::size_t mask_count_sse42(const char* mask, std::size_t n);

// --- avx2 level (kernels_avx2.cpp, -mavx2 -mpclmul) -------------------------
std::size_t delta_varint_decode_avx2(const unsigned char* data,
                                     std::size_t size, std::size_t n,
                                     std::uint64_t* out);
std::uint32_t crc32_clmul(const void* data, std::size_t size,
                          std::uint32_t seed);
void cmp_mask_f64_avx2(const void* values, std::size_t n, Cmp op,
                       double lit, char* mask, bool refine);
void cmp_mask_i64_avx2(const std::int64_t* values, std::size_t n, Cmp op,
                       std::int64_t lit, char* mask, bool refine);
void welford_fold_avx2(const double* values, const char* mask,
                       std::size_t n, WelfordBatch* acc);
void mask_and_avx2(char* dst, const char* src, std::size_t n);
void mask_or_avx2(char* dst, const char* src, std::size_t n);
void mask_not_avx2(char* mask, std::size_t n);
std::size_t mask_count_avx2(const char* mask, std::size_t n);

}  // namespace cal::simd::detail
