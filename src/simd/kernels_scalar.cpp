// Scalar kernel tier: faithful ports of the byte-at-a-time loops the
// archive and query engine ran before the dispatch layer existed.  This
// tier is the semantic reference the vector tiers are tested against,
// and what CAL_SIMD=scalar pins in CI.

#include <array>
#include <cstring>

#include "simd/kernels.hpp"

namespace cal::simd::detail {

std::size_t delta_varint_decode_scalar(const unsigned char* data,
                                       std::size_t size, std::size_t n,
                                       std::uint64_t* out) {
  std::size_t pos = 0;
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    const std::size_t used = decode_one_varint(data + pos, size - pos, &v);
    if (used == 0) return kDecodeError;
    pos += used;
    prev += unzigzag(v);
    out[i] = static_cast<std::uint64_t>(prev);
  }
  return pos;
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

const std::array<std::uint32_t, 256>& crc32_byte_table() {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

std::uint32_t crc32_scalar(const void* data, std::size_t size,
                           std::uint32_t seed) {
  const std::array<std::uint32_t, 256>& table = crc32_byte_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void lz_match_copy_scalar(char* dst, std::size_t offset, std::size_t len) {
  const char* src = dst - offset;
  for (std::size_t k = 0; k < len; ++k) dst[k] = src[k];
}

void f64le_decode_scalar(const void* src, std::size_t n, double* out) {
  const auto* p = static_cast<const unsigned char*>(src);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t bits = 0;
    for (int b = 0; b < 8; ++b) {
      bits |= static_cast<std::uint64_t>(p[8 * i + b]) << (8 * b);
    }
    std::memcpy(&out[i], &bits, sizeof(double));
  }
}

void cmp_mask_f64_scalar(const void* values, std::size_t n, Cmp op,
                         double lit, char* mask, bool refine) {
  const auto* p = static_cast<const unsigned char*>(values);
  for (std::size_t i = 0; i < n; ++i) {
    if (refine && !mask[i]) continue;
    double v = 0.0;
    std::memcpy(&v, p + 8 * i, sizeof(double));
    mask[i] = cmp_f64(v, op, lit);
  }
}

void cmp_mask_i64_scalar(const std::int64_t* values, std::size_t n, Cmp op,
                         std::int64_t lit, char* mask, bool refine) {
  for (std::size_t i = 0; i < n; ++i) {
    if (refine && !mask[i]) continue;
    mask[i] = cmp_i64(values[i], op, lit);
  }
}

void welford_fold_scalar(const double* values, const char* mask,
                         std::size_t n, WelfordBatch* acc) {
  if (mask == nullptr) {
    for (std::size_t i = 0; i < n; ++i) welford_push(*acc, values[i]);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i]) welford_push(*acc, values[i]);
  }
}

void mask_and_scalar(char* dst, const char* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void mask_or_scalar(char* dst, const char* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void mask_not_scalar(char* mask, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) mask[i] = !mask[i];
}

std::size_t mask_count_scalar(const char* mask, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += mask[i] != 0;
  return count;
}

}  // namespace cal::simd::detail
