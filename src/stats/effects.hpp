#pragma once
// Design-of-Experiments effect analysis.
//
// The methodology is grounded in DoE (the paper cites Montgomery); once a
// randomized factorial campaign has produced a raw table, the natural
// first analysis is: which factors actually move the response, and by
// how much?  main_effects() estimates per-level effects and a
// variance-decomposition share for each factor; interaction_effect()
// quantifies a two-factor interaction.  This is how Fig. 13's
// cause-and-effect diagram is turned into numbers.

#include <string>
#include <vector>

#include "core/record.hpp"

namespace cal::stats {

struct LevelEffect {
  Value level;
  std::size_t n = 0;
  double mean = 0.0;
  double effect = 0.0;  ///< mean(level) - grand mean
};

struct FactorEffect {
  std::string factor;
  double grand_mean = 0.0;
  std::vector<LevelEffect> levels;
  /// Between-level sum of squares over total sum of squares: the share
  /// of the response variance this factor explains on its own.
  double variance_share = 0.0;
  /// max |effect| across levels, in units of the response.
  double max_abs_effect = 0.0;
};

/// Main effect of one factor on a metric.
FactorEffect main_effect(const RawTable& table, const std::string& factor,
                         const std::string& metric);

/// Main effects of all factors, sorted by descending variance share.
std::vector<FactorEffect> main_effects(const RawTable& table,
                                       const std::string& metric);

struct InteractionEffect {
  std::string factor_a;
  std::string factor_b;
  /// Interaction sum of squares (cell SS minus both main-effect SS) over
  /// total SS.  ~0 means the factors act additively.
  double variance_share = 0.0;
};

InteractionEffect interaction_effect(const RawTable& table,
                                     const std::string& factor_a,
                                     const std::string& factor_b,
                                     const std::string& metric);

}  // namespace cal::stats
