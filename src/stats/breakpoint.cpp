#include "stats/breakpoint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace cal::stats {

// ---------------------------------------------------------------------------
// NetGaugeDetector
// ---------------------------------------------------------------------------

NetGaugeDetector::NetGaugeDetector(Options options) : options_(options) {
  if (options_.factor <= 1.0) {
    throw std::invalid_argument("NetGaugeDetector: factor must be > 1");
  }
}

LinearFit NetGaugeDetector::accepted_fit() const {
  const std::size_t n = accepted_end_ - segment_start_;
  return linear_fit(std::span(xs_.data() + segment_start_, n),
                    std::span(ys_.data() + segment_start_, n));
}

void NetGaugeDetector::add(double x, double y) {
  if (!xs_.empty() && x < xs_.back()) {
    throw std::invalid_argument("NetGaugeDetector: x must be non-decreasing");
  }
  xs_.push_back(x);
  ys_.push_back(y);
  const std::size_t i = xs_.size() - 1;

  if (!tentative_) {
    // Grow the segment until it can support a fit.
    if (i - segment_start_ < options_.min_segment) {
      accepted_end_ = i + 1;
      return;
    }
    const LinearFit fit = accepted_fit();
    const double rms = std::sqrt(
        fit.rss / static_cast<double>(std::max<std::size_t>(fit.n - 2, 1)));
    const double predicted = fit.predict(x);
    const double scale =
        std::max(rms, options_.rel_floor * std::abs(predicted) + 1e-12);
    if (std::abs(y - predicted) > options_.factor * scale) {
      // Suspected protocol change at this point; freeze the fit and wait
      // for confirmation before committing (the five-measurement rule).
      tentative_ = true;
      tentative_index_ = i;
      tentative_count_ = 0;
    } else {
      accepted_end_ = i + 1;
    }
    return;
  }

  // Confirmation phase: compare against the frozen pre-break fit.
  const LinearFit frozen = accepted_fit();
  const double rms = std::sqrt(
      frozen.rss /
      static_cast<double>(std::max<std::size_t>(frozen.n - 2, 1)));
  const double predicted = frozen.predict(x);
  const double scale =
      std::max(rms, options_.rel_floor * std::abs(predicted) + 1e-12);
  if (std::abs(y - predicted) > options_.factor * scale) {
    ++tentative_count_;
    if (tentative_count_ >= options_.confirm_points) {
      breaks_.push_back(xs_[tentative_index_]);
      segment_start_ = tentative_index_;
      accepted_end_ = xs_.size();
      tentative_ = false;
    }
  } else {
    // The deviation vanished: an anomalous measurement, not a protocol
    // change.  Accept the skipped points into the segment.
    tentative_ = false;
    accepted_end_ = xs_.size();
  }
}

std::vector<LinearFit> NetGaugeDetector::segment_fits() const {
  std::vector<LinearFit> fits;
  std::vector<std::size_t> starts;
  starts.push_back(0);
  for (const double b : breaks_) {
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      if (xs_[i] == b) {
        starts.push_back(i);
        break;
      }
    }
  }
  starts.push_back(xs_.size());
  for (std::size_t s = 0; s + 1 < starts.size(); ++s) {
    const std::size_t lo = starts[s];
    const std::size_t n = starts[s + 1] - lo;
    if (n >= 2) {
      fits.push_back(linear_fit(std::span(xs_.data() + lo, n),
                                std::span(ys_.data() + lo, n)));
    }
  }
  return fits;
}

// ---------------------------------------------------------------------------
// PLogPProber
// ---------------------------------------------------------------------------

PLogPProber::PLogPProber(Options options) : options_(options) {
  if (options_.tolerance <= 0.0) {
    throw std::invalid_argument("PLogPProber: tolerance must be > 0");
  }
}

PLogPProber::Result PLogPProber::probe(const Sampler& sample, double x_min,
                                       double x_max) {
  if (x_min <= 0.0 || x_max < x_min) {
    throw std::invalid_argument("PLogPProber: bad range");
  }
  Result result;
  auto take = [&](double x) {
    const double y = sample(x);
    result.xs.push_back(x);
    result.ys.push_back(y);
    return y;
  };

  double prev_x = x_min;
  double prev_y = take(prev_x);
  double cur_x = std::min(2.0 * x_min, x_max);
  double cur_y = take(cur_x);

  while (cur_x < x_max) {
    double next_x = std::min(2.0 * cur_x, x_max);
    double next_y = take(next_x);

    // Extrapolate the line through the previous two measurements.
    const double slope = (cur_y - prev_y) / (cur_x - prev_x);
    const double expected = cur_y + slope * (next_x - cur_x);
    const double deviation =
        std::abs(next_y - expected) / std::max(std::abs(expected), 1e-30);

    if (deviation > options_.tolerance) {
      // Localize the change by interval halving.
      double lo_x = cur_x, lo_y = cur_y;
      double hi_x = next_x;
      for (std::size_t attempt = 0;
           attempt < options_.max_attempts && (hi_x - lo_x) > 1.0; ++attempt) {
        const double mid_x = 0.5 * (lo_x + hi_x);
        const double mid_y = take(mid_x);
        const double mid_expected = lo_y + slope * (mid_x - lo_x);
        const double mid_dev = std::abs(mid_y - mid_expected) /
                               std::max(std::abs(mid_expected), 1e-30);
        if (mid_dev > options_.tolerance) {
          hi_x = mid_x;
        } else {
          lo_x = mid_x;
          lo_y = mid_y;
        }
      }
      result.breakpoints.push_back(0.5 * (lo_x + hi_x));
    }

    prev_x = cur_x;
    prev_y = cur_y;
    cur_x = next_x;
    cur_y = next_y;
  }
  return result;
}

// ---------------------------------------------------------------------------
// LoOgGP offline neighborhood detector
// ---------------------------------------------------------------------------

std::vector<double> loogp_breakpoints(std::span<const double> xs,
                                      std::span<const double> ys,
                                      LoOgGPOptions options) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("loogp_breakpoints: size mismatch");
  }
  if (xs.size() < 2 * options.neighborhood + 1) return {};

  // Sort by x (offline analysis).
  std::vector<std::size_t> order(xs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> sx(xs.size()), sy(xs.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    sx[i] = xs[order[i]];
    sy[i] = ys[order[i]];
  }

  // Detrend with a global OLS line, then compute residuals.
  const LinearFit trend = linear_fit(sx, sy);
  std::vector<double> resid(sx.size());
  for (std::size_t i = 0; i < sx.size(); ++i) {
    resid[i] = sy[i] - trend.predict(sx[i]);
  }

  // Outlier handling: IQR fences on residuals identify the bulk of the
  // noise; the robust scale is estimated from that bulk so that large
  // bumps (the protocol-change candidates themselves) do not inflate it.
  const BoxplotSummary box = boxplot(resid);
  std::vector<double> bulk;
  for (const double r : resid) {
    if (r >= box.lower_fence && r <= box.upper_fence) bulk.push_back(r);
  }
  if (bulk.size() < 3) return {};
  const double scale = std::max(mad(bulk) * 1.4826, 1e-30);
  const double med = median(bulk);

  std::vector<double> breaks;
  const std::size_t k = options.neighborhood;
  for (std::size_t i = 0; i < resid.size(); ++i) {
    const double z = (resid[i] - med) / scale;
    if (z < options.z_min) continue;
    bool is_max = true;
    const std::size_t lo = i >= k ? i - k : 0;
    const std::size_t hi = std::min(i + k, resid.size() - 1);
    for (std::size_t j = lo; j <= hi; ++j) {
      if (j != i && resid[j] >= resid[i]) {
        is_max = false;
        break;
      }
    }
    if (is_max) breaks.push_back(sx[i]);
  }
  return breaks;
}

// ---------------------------------------------------------------------------
// Offline segmented least squares (DP)
// ---------------------------------------------------------------------------

namespace {

/// Precomputed prefix sums enabling O(1) RSS of the OLS fit over [i, j].
class RssOracle {
 public:
  RssOracle(std::span<const double> xs, std::span<const double> ys)
      : n_(xs.size()),
        px_(n_ + 1, 0.0),
        py_(n_ + 1, 0.0),
        pxx_(n_ + 1, 0.0),
        pxy_(n_ + 1, 0.0),
        pyy_(n_ + 1, 0.0) {
    for (std::size_t i = 0; i < n_; ++i) {
      px_[i + 1] = px_[i] + xs[i];
      py_[i + 1] = py_[i] + ys[i];
      pxx_[i + 1] = pxx_[i] + xs[i] * xs[i];
      pxy_[i + 1] = pxy_[i] + xs[i] * ys[i];
      pyy_[i + 1] = pyy_[i] + ys[i] * ys[i];
    }
  }

  /// RSS of the best line over points [i, j] inclusive.
  double rss(std::size_t i, std::size_t j) const {
    const auto n = static_cast<double>(j - i + 1);
    const double sx = px_[j + 1] - px_[i];
    const double sy = py_[j + 1] - py_[i];
    const double sxx = pxx_[j + 1] - pxx_[i];
    const double sxy = pxy_[j + 1] - pxy_[i];
    const double syy = pyy_[j + 1] - pyy_[i];
    const double cxx = sxx - sx * sx / n;
    const double cxy = sxy - sx * sy / n;
    const double cyy = syy - sy * sy / n;
    if (cxx <= 0.0) return std::max(cyy, 0.0);
    const double r = cyy - cxy * cxy / cxx;
    return std::max(r, 0.0);
  }

 private:
  std::size_t n_;
  std::vector<double> px_, py_, pxx_, pxy_, pyy_;
};

}  // namespace

SegmentedFit segmented_least_squares(std::span<const double> xs,
                                     std::span<const double> ys,
                                     SegmentedOptions options) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("segmented_least_squares: size mismatch");
  }
  const std::size_t n = xs.size();
  const std::size_t min_pts = std::max<std::size_t>(options.min_points_per_segment, 2);
  if (n < min_pts) {
    throw std::invalid_argument("segmented_least_squares: too few points");
  }

  // Sort by x.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> sx(n), sy(n);
  for (std::size_t i = 0; i < n; ++i) {
    sx[i] = xs[order[i]];
    sy[i] = ys[order[i]];
  }

  const RssOracle oracle(sx, sy);
  const std::size_t max_k =
      std::min(options.max_segments, n / min_pts == 0 ? 1 : n / min_pts);

  // dp[k][j]: best cost covering points [0, j] with k+1 segments.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(max_k, std::vector<double>(n, inf));
  std::vector<std::vector<std::size_t>> parent(
      max_k, std::vector<std::size_t>(n, 0));

  for (std::size_t j = min_pts - 1; j < n; ++j) dp[0][j] = oracle.rss(0, j);
  for (std::size_t k = 1; k < max_k; ++k) {
    for (std::size_t j = (k + 1) * min_pts - 1; j < n; ++j) {
      for (std::size_t i = k * min_pts; j + 1 >= i + min_pts; ++i) {
        if (dp[k - 1][i - 1] == inf) continue;
        const double cost = dp[k - 1][i - 1] + oracle.rss(i, j);
        if (cost < dp[k][j]) {
          dp[k][j] = cost;
          parent[k][j] = i;
        }
      }
    }
  }

  // Select the number of segments by BIC unless pinned.
  std::size_t best_k = 0;  // 0-based: best_k+1 segments
  if (options.exact_segments > 0) {
    best_k = std::min(options.exact_segments, max_k) - 1;
  } else {
    double best_bic = inf;
    const double dn = static_cast<double>(n);
    for (std::size_t k = 0; k < max_k; ++k) {
      if (dp[k][n - 1] == inf) continue;
      const double rss = std::max(dp[k][n - 1], 1e-30);
      const auto params = static_cast<double>(3 * (k + 1));  // slope+icept+break
      const double bic = dn * std::log(rss / dn) + params * std::log(dn);
      if (bic < best_bic - 1e-12) {
        best_bic = bic;
        best_k = k;
      }
    }
  }

  // Backtrack segment starts.
  std::vector<std::size_t> starts;
  {
    std::size_t j = n - 1;
    for (std::size_t k = best_k; k > 0; --k) {
      const std::size_t i = parent[k][j];
      starts.push_back(i);
      j = i - 1;
    }
    starts.push_back(0);
    std::reverse(starts.begin(), starts.end());
  }

  SegmentedFit out;
  out.chosen_segments = best_k + 1;
  out.total_rss = dp[best_k][n - 1];
  for (std::size_t s = 0; s < starts.size(); ++s) {
    const std::size_t lo = starts[s];
    const std::size_t hi = (s + 1 < starts.size()) ? starts[s + 1] : n;
    out.segments.push_back(linear_fit(std::span(sx.data() + lo, hi - lo),
                                      std::span(sy.data() + lo, hi - lo)));
    if (s > 0) {
      // Breakpoint between the last x of the previous segment and the
      // first x of this one.
      out.breakpoints.push_back(0.5 * (sx[lo - 1] + sx[lo]));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scoring
// ---------------------------------------------------------------------------

BreakpointScore score_breakpoints(std::span<const double> detected,
                                  std::span<const double> truth,
                                  double rel_tolerance, double abs_floor) {
  BreakpointScore score;
  std::vector<bool> truth_used(truth.size(), false);
  for (const double d : detected) {
    bool matched = false;
    for (std::size_t t = 0; t < truth.size(); ++t) {
      if (truth_used[t]) continue;
      const double tol = std::max(rel_tolerance * truth[t], abs_floor);
      if (std::abs(d - truth[t]) <= tol) {
        truth_used[t] = true;
        matched = true;
        break;
      }
    }
    if (matched) {
      ++score.true_positives;
    } else {
      ++score.false_positives;
    }
  }
  for (const bool used : truth_used) {
    if (!used) ++score.false_negatives;
  }
  const auto tp = static_cast<double>(score.true_positives);
  const auto fp = static_cast<double>(score.false_positives);
  const auto fn = static_cast<double>(score.false_negatives);
  score.precision = (tp + fp) > 0 ? tp / (tp + fp) : 0.0;
  score.recall = (tp + fn) > 0 ? tp / (tp + fn) : 0.0;
  score.f1 = (score.precision + score.recall) > 0
                 ? 2 * score.precision * score.recall /
                       (score.precision + score.recall)
                 : 0.0;
  return score;
}

}  // namespace cal::stats
