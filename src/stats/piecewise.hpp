#pragma once
// Supervised piecewise-linear regression (the paper's stage-3 method).
//
// "The breakpoints are manually provided by the analyst and a piecewise
// linear regression is calculated for each of the three operations"
// (Section V-A).  fit_piecewise() takes analyst breakpoints, splits the
// data into half-open segments [b_i, b_{i+1}), fits OLS per segment, and
// reports per-segment diagnostics so a human can "check the linearity
// assumption, if the breakpoints are coherent, and the outcome of the
// regressions".

#include <span>
#include <vector>

#include "stats/regression.hpp"

namespace cal::stats {

struct Segment {
  double lo = 0.0;       ///< inclusive lower x bound
  double hi = 0.0;       ///< exclusive upper x bound (inf for the last)
  LinearFit fit;
};

struct PiecewiseFit {
  std::vector<double> breakpoints;  ///< interior breakpoints, ascending
  std::vector<Segment> segments;    ///< breakpoints.size() + 1 entries
  double total_rss = 0.0;
  std::size_t n = 0;

  /// Predicts with the segment containing x.
  double predict(double x) const;

  /// Index of the segment containing x.
  std::size_t segment_of(double x) const;
};

/// Fits a piecewise linear model with the given interior breakpoints.
/// Segments with fewer than 2 points get a degenerate constant fit at the
/// segment's mean (or the global mean when empty) and are flagged by
/// fit.n < 2 for the analyst to see.
PiecewiseFit fit_piecewise(std::span<const double> xs,
                           std::span<const double> ys,
                           std::vector<double> breakpoints);

}  // namespace cal::stats
