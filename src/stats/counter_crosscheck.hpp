#pragma once
// Counter-vs-model cross-checks (CounterPoint-style contradiction
// hunting).
//
// The paper's pitfalls all share one failure shape: an opaque timing
// number is trusted because nothing independent can refute it.
// Simulated PMU counters (sim/pmu) are that independent signal.  This
// pass takes a calibration campaign whose table carries `pmu.*` counter
// columns, derives counter-based rates (cycles per access, MPKI per
// level, IPC, effective frequency), and confronts them with what a
// *claimed* machine spec predicts through the same whitebox models the
// calibration fits use:
//
//   stall_accounting:  measured stall cycles  vs  sum over levels of
//                      (claimed per-level hit stall) x (counted hits) --
//                      a mis-calibrated cache latency shows up exactly
//                      in the size regime that hits that level;
//   cycle_accounting:  measured cycles  vs  issue-model cycles plus the
//                      *measured* stalls -- isolates the issue model
//                      from the stall model;
//   effective_frequency: cycles / elapsed  vs  the claimed DVFS range --
//                        timer noise or a hidden governor regime makes
//                        the clock contradict the cycle counter.
//
// A finding is recorded per cell per check; contradictions (findings
// whose relative error exceeds the tolerance) fail the report.  Honest
// specs pass because the simulator's counters and its timing come from
// the same mechanisms; a planted wrong latency cannot hide, because the
// counters pin down *how many times* each level was hit.
//
// Required metric columns: pmu.cycles, pmu.instructions, pmu.l1_hits,
// pmu.l1_misses, pmu.l2_hits, pmu.llc_hits, pmu.mem_accesses,
// pmu.stall_cycles, elapsed_s.  Required factors: elem_bytes, unroll
// (the canonical mem-calibration names).

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/record.hpp"
#include "core/value.hpp"
#include "sim/machine.hpp"

namespace cal::stats {

struct CrosscheckOptions {
  /// Relative error above which a stall/cycle accounting finding is a
  /// contradiction.  The simulator is counter-exact mod rounding, so an
  /// honest spec sits orders of magnitude below this.
  double accounting_tolerance = 0.15;
  /// Slack on the claimed [min, max] DVFS range for effective frequency.
  double frequency_tolerance = 0.10;
  /// Cells whose stall mass is below this many cycles per access skip
  /// the stall contradiction flag: relative error on ~zero stalls is
  /// noise, not signal (L1-resident cells).
  double min_stall_per_access = 0.5;
};

/// Counter-derived rates for one plan cell (means over replicates).
struct CounterRates {
  std::size_t cell_index = 0;
  std::vector<Value> factors;        ///< first record's factor values
  double accesses = 0.0;             ///< l1_hits + l1_misses
  double cycles_per_access = 0.0;
  double ipc = 0.0;                  ///< instructions / cycles
  double l1_mpki = 0.0;              ///< l1 misses per kilo-instruction
  double l2_mpki = 0.0;
  double llc_mpki = 0.0;
  double mem_per_kilo_instr = 0.0;
  double effective_ghz = 0.0;        ///< cycles / elapsed
};

struct CrosscheckFinding {
  std::string check;          ///< stall_accounting | cycle_accounting |
                              ///< effective_frequency
  std::size_t cell_index = 0;
  std::vector<Value> factors;
  double measured = 0.0;
  double predicted = 0.0;
  double rel_error = 0.0;
  bool flagged = false;       ///< contradiction under the tolerances
  std::string note;           ///< human-readable context
};

struct CrosscheckReport {
  std::vector<CounterRates> rates;        ///< one per cell
  std::vector<CrosscheckFinding> findings;  ///< one per cell per check
  std::size_t cells = 0;
  std::size_t contradictions = 0;

  bool passed() const noexcept { return contradictions == 0; }

  /// Printable verdict: summary line, then every flagged finding.
  std::string to_text() const;
};

/// Runs every check of `table`'s counter columns against `claimed`.
/// Throws std::invalid_argument when a required column is missing.
CrosscheckReport counter_crosscheck(const RawTable& table,
                                    const sim::MachineSpec& claimed,
                                    const CrosscheckOptions& options = {});

}  // namespace cal::stats
