#include "stats/modes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace cal::stats {

ModeSplit split_modes(std::span<const double> xs, ModeOptions options) {
  if (xs.size() < 2) {
    throw std::invalid_argument("split_modes: need at least 2 points");
  }
  double lo = min_value(xs);
  double hi = max_value(xs);
  ModeSplit split;
  if (lo == hi) {
    split.low_center = split.high_center = lo;
    split.low_count = xs.size();
    split.threshold = lo;
    return split;
  }

  double c_low = lo, c_high = hi;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double sum_low = 0, sum_high = 0;
    std::size_t n_low = 0, n_high = 0;
    const double mid = 0.5 * (c_low + c_high);
    for (const double x : xs) {
      if (x <= mid) {
        sum_low += x;
        ++n_low;
      } else {
        sum_high += x;
        ++n_high;
      }
    }
    if (n_low == 0 || n_high == 0) break;
    const double new_low = sum_low / static_cast<double>(n_low);
    const double new_high = sum_high / static_cast<double>(n_high);
    if (new_low == c_low && new_high == c_high) break;
    c_low = new_low;
    c_high = new_high;
  }

  split.low_center = c_low;
  split.high_center = c_high;
  split.threshold = 0.5 * (c_low + c_high);

  std::vector<double> low_pts, high_pts;
  for (const double x : xs) {
    if (x <= split.threshold) {
      low_pts.push_back(x);
    } else {
      high_pts.push_back(x);
    }
  }
  split.low_count = low_pts.size();
  split.high_count = high_pts.size();

  const double var_low = low_pts.size() > 1 ? variance(low_pts) : 0.0;
  const double var_high = high_pts.size() > 1 ? variance(high_pts) : 0.0;
  const auto n_low = static_cast<double>(low_pts.size());
  const auto n_high = static_cast<double>(high_pts.size());
  const double pooled =
      std::sqrt(((n_low > 1 ? (n_low - 1) * var_low : 0.0) +
                 (n_high > 1 ? (n_high - 1) * var_high : 0.0)) /
                std::max(n_low + n_high - 2.0, 1.0));
  const double gap = split.high_center - split.low_center;
  split.separation = pooled > 0.0 ? gap / pooled
                     : gap > 0.0  ? std::numeric_limits<double>::infinity()
                                  : 0.0;

  const auto total = static_cast<double>(xs.size());
  const double frac_low = n_low / total;
  const double frac_high = n_high / total;
  split.bimodal = split.separation >= options.separation_threshold &&
                  frac_low >= options.min_fraction &&
                  frac_high >= options.min_fraction;
  return split;
}

Histogram histogram(std::span<const double> xs, std::size_t bins) {
  if (xs.empty()) throw std::invalid_argument("histogram: empty input");
  if (bins == 0) throw std::invalid_argument("histogram: zero bins");
  Histogram h;
  h.lo = min_value(xs);
  h.hi = max_value(xs);
  h.counts.assign(bins, 0);
  if (h.hi == h.lo) {
    h.bin_width = 1.0;
    h.counts[0] = xs.size();
    return h;
  }
  h.bin_width = (h.hi - h.lo) / static_cast<double>(bins);
  for (const double x : xs) {
    auto b = static_cast<std::size_t>((x - h.lo) / h.bin_width);
    if (b >= bins) b = bins - 1;
    ++h.counts[b];
  }
  return h;
}

std::size_t Histogram::peak_count(std::size_t min_count) const {
  // A peak is a maximal run of equal bins that is strictly higher than
  // both neighbors (treating the outside as zero).  Plateaus count once.
  std::size_t peaks = 0;
  std::size_t i = 0;
  while (i < counts.size()) {
    std::size_t j = i;
    while (j + 1 < counts.size() && counts[j + 1] == counts[i]) ++j;
    const std::size_t left = i > 0 ? counts[i - 1] : 0;
    const std::size_t right = j + 1 < counts.size() ? counts[j + 1] : 0;
    if (counts[i] >= min_count && counts[i] > left && counts[i] > right) {
      ++peaks;
    }
    i = j + 1;
  }
  return peaks;
}

}  // namespace cal::stats
