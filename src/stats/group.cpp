#include "stats/group.hpp"

#include <algorithm>
#include <map>

namespace cal::stats {

std::vector<Group> group_metric(const RawTable& table,
                                const std::vector<std::string>& factors,
                                const std::string& metric) {
  std::vector<std::size_t> f_idx;
  f_idx.reserve(factors.size());
  for (const auto& f : factors) f_idx.push_back(table.factor_index(f));
  const std::size_t m_idx = table.metric_index(metric);

  std::map<std::vector<Value>, Group> groups;
  for (const auto& rec : table.records()) {
    std::vector<Value> key;
    key.reserve(f_idx.size());
    for (const std::size_t i : f_idx) key.push_back(rec.factors[i]);
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) it->second.key = key;
    it->second.samples.push_back(rec.metrics[m_idx]);
    it->second.sequence.push_back(rec.sequence);
  }

  std::vector<Group> out;
  out.reserve(groups.size());
  for (auto& [key, group] : groups) {
    // Order samples by sequence so temporal diagnostics can use them.
    std::vector<std::size_t> order(group.samples.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return group.sequence[a] < group.sequence[b];
    });
    Group sorted;
    sorted.key = group.key;
    sorted.samples.reserve(order.size());
    sorted.sequence.reserve(order.size());
    for (const std::size_t i : order) {
      sorted.samples.push_back(group.samples[i]);
      sorted.sequence.push_back(group.sequence[i]);
    }
    out.push_back(std::move(sorted));
  }
  return out;
}

std::vector<GroupSummary> summarize_groups(
    const RawTable& table, const std::vector<std::string>& factors,
    const std::string& metric) {
  std::vector<GroupSummary> out;
  for (const auto& group : group_metric(table, factors, metric)) {
    GroupSummary s;
    s.key = group.key;
    s.n = group.samples.size();
    s.mean = mean(group.samples);
    s.sd = stddev(group.samples);
    s.median = median(group.samples);
    s.q1 = quantile(group.samples, 0.25);
    s.q3 = quantile(group.samples, 0.75);
    s.min = min_value(group.samples);
    s.max = max_value(group.samples);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace cal::stats
