#include "stats/group.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace cal::stats {
namespace {

bool key_less(const std::vector<Value>& a, const std::vector<Value>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

/// Reorders a group's samples and sequence in place by `order`
/// (order[i] = index of the element that must end up at position i),
/// destroying `order`.  Cycle-walking swaps: no copy of the group is
/// materialized.
void apply_permutation(std::vector<std::size_t>& order, Group& group) {
  const std::size_t n = order.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t src = order[i];
    // Already-moved slots redirect to where their content went.
    while (src < i) src = order[src];
    if (src != i) {
      std::swap(group.samples[i], group.samples[src]);
      std::swap(group.sequence[i], group.sequence[src]);
    }
    order[i] = src;
  }
}

}  // namespace

std::vector<Group> group_metric(const RawTable& table,
                                const std::vector<std::string>& factors,
                                const std::string& metric) {
  std::vector<std::size_t> f_idx;
  f_idx.reserve(factors.size());
  for (const auto& f : factors) f_idx.push_back(table.factor_index(f));
  const std::size_t m_idx = table.metric_index(metric);

  // Hash-grouped: O(1) expected per record instead of a log-time map of
  // lexicographic Value comparisons.  The scratch key is allocated once
  // and refilled per record; a fresh copy is made only per distinct group.
  std::vector<Group> out;
  std::unordered_map<std::vector<Value>, std::size_t, ValueHash> index;
  index.reserve(64);
  std::vector<Value> key;
  key.reserve(f_idx.size());
  for (const auto& rec : table.records()) {
    key.clear();
    for (const std::size_t i : f_idx) key.push_back(rec.factors[i]);
    std::size_t slot = 0;
    if (const auto it = index.find(key); it != index.end()) {
      slot = it->second;
    } else {
      slot = out.size();
      index.emplace(key, slot);
      Group group;
      group.key = key;
      out.push_back(std::move(group));
    }
    out[slot].samples.push_back(rec.metrics[m_idx]);
    out[slot].sequence.push_back(rec.sequence);
  }

  // Keep the documented key ordering (Value ordering, lexicographic).
  std::sort(out.begin(), out.end(),
            [](const Group& a, const Group& b) { return key_less(a.key, b.key); });

  // Order samples by sequence so temporal diagnostics can use them.
  // Engine output already arrives in sequence order, so the common case
  // is a no-op check; otherwise apply the sort permutation in place.
  std::vector<std::size_t> order;
  for (auto& group : out) {
    if (std::is_sorted(group.sequence.begin(), group.sequence.end())) continue;
    order.resize(group.sequence.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return group.sequence[a] < group.sequence[b];
    });
    apply_permutation(order, group);
  }
  return out;
}

std::vector<GroupSummary> summarize_groups(
    const RawTable& table, const std::vector<std::string>& factors,
    const std::string& metric) {
  std::vector<GroupSummary> out;
  for (const auto& group : group_metric(table, factors, metric)) {
    GroupSummary s;
    s.key = group.key;
    s.n = group.samples.size();
    s.mean = mean(group.samples);
    s.sd = stddev(group.samples);
    s.median = median(group.samples);
    s.q1 = quantile(group.samples, 0.25);
    s.q3 = quantile(group.samples, 0.75);
    s.min = min_value(group.samples);
    s.max = max_value(group.samples);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace cal::stats
