#include "stats/outlier.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"

namespace cal::stats {

std::vector<std::size_t> iqr_outliers(std::span<const double> xs, double k) {
  std::vector<std::size_t> out;
  if (xs.size() < 4) return out;
  const double q1 = quantile(xs, 0.25);
  const double q3 = quantile(xs, 0.75);
  const double iqr = q3 - q1;
  const double lo = q1 - k * iqr;
  const double hi = q3 + k * iqr;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] < lo || xs[i] > hi) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> zscore_outliers(std::span<const double> xs,
                                         double threshold) {
  std::vector<std::size_t> out;
  if (xs.size() < 3) return out;
  const double m = mean(xs);
  const double sd = stddev(xs);
  if (sd == 0.0) return out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (std::abs(xs[i] - m) / sd > threshold) out.push_back(i);
  }
  return out;
}

std::vector<double> remove_indices(std::span<const double> xs,
                                   std::span<const std::size_t> indices) {
  std::vector<bool> drop(xs.size(), false);
  for (const std::size_t i : indices) {
    if (i < xs.size()) drop[i] = true;
  }
  std::vector<double> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (!drop[i]) out.push_back(xs[i]);
  }
  return out;
}

OutlierDiagnosis diagnose_outliers(std::span<const double> xs,
                                   double z_threshold) {
  OutlierDiagnosis diag;
  if (xs.size() < 4) return diag;

  const double med = median(xs);
  const double scale = std::max(mad(xs) * 1.4826, 1e-30);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double z = std::abs(xs[i] - med) / scale;
    diag.max_abs_z = std::max(diag.max_abs_z, z);
    if (z > z_threshold) diag.indices.push_back(i);
  }
  diag.fraction =
      static_cast<double>(diag.indices.size()) / static_cast<double>(xs.size());

  // Temporal clustering: count adjacent flagged pairs and compare with
  // the expectation under a uniformly random placement of the same number
  // of flags.  A perturbation window (Fig. 11) produces a ratio >> 1.
  if (diag.indices.size() >= 2) {
    std::size_t adjacent = 0;
    for (std::size_t i = 1; i < diag.indices.size(); ++i) {
      if (diag.indices[i] == diag.indices[i - 1] + 1) ++adjacent;
    }
    const auto k = static_cast<double>(diag.indices.size());
    const auto n = static_cast<double>(xs.size());
    const double expected = std::max((k - 1.0) * (k / n), 1e-12);
    diag.clustering_score = static_cast<double>(adjacent) / expected;
    diag.temporally_clustered =
        adjacent >= 2 && diag.clustering_score > 3.0;
  }
  return diag;
}

}  // namespace cal::stats
