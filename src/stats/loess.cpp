#include "stats/loess.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cal::stats {

std::vector<double> loess(std::span<const double> xs,
                          std::span<const double> ys,
                          std::span<const double> query,
                          LoessOptions options) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("loess: size mismatch");
  }
  if (xs.size() < 3) throw std::invalid_argument("loess: need >= 3 points");
  if (options.span <= 0.0 || options.span > 1.0) {
    throw std::invalid_argument("loess: span must be in (0, 1]");
  }

  const std::size_t n = xs.size();
  const std::size_t window = std::max<std::size_t>(
      3, static_cast<std::size_t>(std::ceil(options.span * static_cast<double>(n))));

  // Sort once by x.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> sx(n), sy(n);
  for (std::size_t i = 0; i < n; ++i) {
    sx[i] = xs[order[i]];
    sy[i] = ys[order[i]];
  }

  std::vector<double> out;
  out.reserve(query.size());
  for (const double q : query) {
    // Window: the `window` nearest points by x distance.
    // Locate q and expand symmetrically.
    const auto it = std::lower_bound(sx.begin(), sx.end(), q);
    std::size_t lo = static_cast<std::size_t>(it - sx.begin());
    std::size_t hi = lo;  // [lo, hi) grows to size `window`
    while (hi - lo < window) {
      const bool can_left = lo > 0;
      const bool can_right = hi < n;
      if (!can_left && !can_right) break;
      if (!can_right ||
          (can_left && q - sx[lo - 1] <= (hi < n ? sx[hi] - q : 1e300))) {
        --lo;
      } else {
        ++hi;
      }
    }

    const double bandwidth =
        std::max({q - sx[lo], (hi > 0 ? sx[hi - 1] : q) - q, 1e-12});

    // Weighted least squares with tricube weights.
    double sw = 0, swx = 0, swy = 0, swxx = 0, swxy = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const double d = std::abs(sx[i] - q) / bandwidth;
      if (d >= 1.0) continue;
      const double t = 1.0 - d * d * d;
      const double w = t * t * t;
      sw += w;
      swx += w * sx[i];
      swy += w * sy[i];
      swxx += w * sx[i] * sx[i];
      swxy += w * sx[i] * sy[i];
    }
    if (sw <= 0.0) {
      // All weights vanished (q far outside data): nearest neighbor.
      out.push_back(lo < n ? sy[lo] : sy.back());
      continue;
    }
    const double det = sw * swxx - swx * swx;
    if (std::abs(det) < 1e-12 * std::max(1.0, swxx)) {
      out.push_back(swy / sw);  // constant fit
    } else {
      const double slope = (sw * swxy - swx * swy) / det;
      const double intercept = (swy - slope * swx) / sw;
      out.push_back(intercept + slope * q);
    }
  }
  return out;
}

LoessCurve loess_curve(std::span<const double> xs, std::span<const double> ys,
                       std::size_t n_out, LoessOptions options) {
  if (xs.empty()) throw std::invalid_argument("loess_curve: empty input");
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  LoessCurve curve;
  curve.x.resize(n_out);
  const double lo = *mn, hi = *mx;
  for (std::size_t i = 0; i < n_out; ++i) {
    curve.x[i] =
        lo + (hi - lo) * static_cast<double>(i) /
                 static_cast<double>(n_out > 1 ? n_out - 1 : 1);
  }
  curve.y = loess(xs, ys, curve.x, options);
  return curve;
}

}  // namespace cal::stats
