#include "stats/counter_crosscheck.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "sim/mem/kernel_model.hpp"

namespace cal::stats {

namespace {

std::size_t require_metric(const RawTable& table, const std::string& name) {
  const auto& names = table.metric_names();
  const auto it = std::find(names.begin(), names.end(), name);
  if (it == names.end()) {
    throw std::invalid_argument("counter_crosscheck: table is missing the '" +
                                name + "' metric column");
  }
  return static_cast<std::size_t>(it - names.begin());
}

std::size_t require_factor(const RawTable& table, const std::string& name) {
  const auto& names = table.factor_names();
  const auto it = std::find(names.begin(), names.end(), name);
  if (it == names.end()) {
    throw std::invalid_argument("counter_crosscheck: table is missing the '" +
                                name + "' factor");
  }
  return static_cast<std::size_t>(it - names.begin());
}

/// Per-cell accumulator: sums of every column the checks consume.
struct CellAcc {
  std::size_t n = 0;
  std::vector<Value> factors;
  double cycles = 0.0;
  double instructions = 0.0;
  double l1_hits = 0.0;
  double l1_misses = 0.0;
  double l2_hits = 0.0;
  double llc_hits = 0.0;
  double mem_accesses = 0.0;
  double stall_cycles = 0.0;
  double eff_hz = 0.0;  ///< sum of per-record cycles / elapsed
};

std::string describe_factors(const RawTable& table,
                             const std::vector<Value>& factors) {
  std::string out;
  const auto& names = table.factor_names();
  for (std::size_t i = 0; i < factors.size() && i < names.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += names[i] + "=" + factors[i].to_string();
  }
  return out;
}

double fmt_safe(double v) { return std::isfinite(v) ? v : 0.0; }

}  // namespace

std::string CrosscheckReport::to_text() const {
  char line[256];
  std::snprintf(line, sizeof line,
                "counter_crosscheck: %zu cells, %zu contradictions -> %s\n",
                cells, contradictions, passed() ? "PASS" : "FAIL");
  std::string out = line;
  for (const auto& f : findings) {
    if (!f.flagged) continue;
    std::snprintf(line, sizeof line,
                  "  CONTRADICTION [%s] cell %zu: measured=%.1f "
                  "predicted=%.1f rel_error=%.3f",
                  f.check.c_str(), f.cell_index, fmt_safe(f.measured),
                  fmt_safe(f.predicted), fmt_safe(f.rel_error));
    out += line;
    if (!f.note.empty()) out += "  (" + f.note + ")";
    out += '\n';
  }
  return out;
}

CrosscheckReport counter_crosscheck(const RawTable& table,
                                    const sim::MachineSpec& claimed,
                                    const CrosscheckOptions& options) {
  if (claimed.caches.empty()) {
    throw std::invalid_argument("counter_crosscheck: claimed spec has no "
                                "caches");
  }
  const std::size_t m_cycles = require_metric(table, "pmu.cycles");
  const std::size_t m_instr = require_metric(table, "pmu.instructions");
  const std::size_t m_l1h = require_metric(table, "pmu.l1_hits");
  const std::size_t m_l1m = require_metric(table, "pmu.l1_misses");
  const std::size_t m_l2h = require_metric(table, "pmu.l2_hits");
  const std::size_t m_llch = require_metric(table, "pmu.llc_hits");
  const std::size_t m_mem = require_metric(table, "pmu.mem_accesses");
  const std::size_t m_stall = require_metric(table, "pmu.stall_cycles");
  const std::size_t m_elapsed = require_metric(table, "elapsed_s");
  const std::size_t f_elem = require_factor(table, "elem_bytes");
  const std::size_t f_unroll = require_factor(table, "unroll");

  // Cell means.  std::map keeps cell order deterministic.
  std::map<std::size_t, CellAcc> cells;
  for (const auto& rec : table.records()) {
    CellAcc& acc = cells[rec.cell_index];
    if (acc.n == 0) acc.factors = rec.factors;
    ++acc.n;
    acc.cycles += rec.metrics[m_cycles];
    acc.instructions += rec.metrics[m_instr];
    acc.l1_hits += rec.metrics[m_l1h];
    acc.l1_misses += rec.metrics[m_l1m];
    acc.l2_hits += rec.metrics[m_l2h];
    acc.llc_hits += rec.metrics[m_llch];
    acc.mem_accesses += rec.metrics[m_mem];
    acc.stall_cycles += rec.metrics[m_stall];
    const double elapsed = rec.metrics[m_elapsed];
    if (elapsed > 0.0) acc.eff_hz += rec.metrics[m_cycles] / elapsed;
  }

  // Claimed per-level hit stalls, mirroring Hierarchy's mapping: hitting
  // level i costs the miss stall of level i-1; memory pays the
  // MLP-divided throughput-domain stall.  The l2 counter is only
  // populated on >= 3-level machines (level 1); the llc counter is the
  // last cache level.
  const std::size_t levels = claimed.caches.size();
  const double stall_l2_hit = claimed.caches[0].miss_stall_cycles;
  const double stall_llc_hit =
      claimed.caches[levels >= 2 ? levels - 2 : 0].miss_stall_cycles;
  const double stall_mem =
      claimed.memory_stall_cycles / std::max(claimed.memory_mlp, 1.0);

  CrosscheckReport report;
  report.cells = cells.size();
  for (const auto& [cell_index, acc] : cells) {
    const double n = static_cast<double>(acc.n);
    const double cycles = acc.cycles / n;
    const double instructions = acc.instructions / n;
    const double accesses = (acc.l1_hits + acc.l1_misses) / n;
    const double l1_misses = acc.l1_misses / n;
    const double l2_hits = acc.l2_hits / n;
    const double llc_hits = acc.llc_hits / n;
    const double mem_accesses = acc.mem_accesses / n;
    const double stalls = acc.stall_cycles / n;
    const double eff_ghz = acc.eff_hz / n / 1e9;

    CounterRates rates;
    rates.cell_index = cell_index;
    rates.factors = acc.factors;
    rates.accesses = accesses;
    rates.cycles_per_access = accesses > 0.0 ? cycles / accesses : 0.0;
    rates.ipc = cycles > 0.0 ? instructions / cycles : 0.0;
    const double kilo_instr = instructions / 1000.0;
    if (kilo_instr > 0.0) {
      rates.l1_mpki = l1_misses / kilo_instr;
      // Misses at a level are the accesses served deeper than it; the L2
      // event pair only exists on >= 3-level machines.
      rates.l2_mpki =
          l2_hits > 0.0 ? (llc_hits + mem_accesses) / kilo_instr : 0.0;
      rates.llc_mpki = mem_accesses / kilo_instr;
      rates.mem_per_kilo_instr = mem_accesses / kilo_instr;
    }
    rates.effective_ghz = eff_ghz;
    report.rates.push_back(rates);

    sim::mem::KernelConfig kernel;
    kernel.element_bytes =
        static_cast<std::size_t>(acc.factors[f_elem].as_int());
    kernel.unroll = static_cast<std::size_t>(acc.factors[f_unroll].as_int());
    const double issue_cpe =
        sim::mem::issue_cycles_per_access(claimed.issue, kernel);

    // --- stall_accounting ------------------------------------------------
    {
      const double predicted = l2_hits * stall_l2_hit +
                               llc_hits * stall_llc_hit +
                               mem_accesses * stall_mem;
      const double scale = std::max(std::max(stalls, predicted), 1.0);
      CrosscheckFinding f;
      f.check = "stall_accounting";
      f.cell_index = cell_index;
      f.factors = acc.factors;
      f.measured = stalls;
      f.predicted = predicted;
      f.rel_error = std::abs(stalls - predicted) / scale;
      const bool material =
          accesses > 0.0 &&
          std::max(stalls, predicted) / accesses >= options.min_stall_per_access;
      f.flagged = material && f.rel_error > options.accounting_tolerance;
      f.note = describe_factors(table, acc.factors);
      if (f.flagged) ++report.contradictions;
      report.findings.push_back(std::move(f));
    }

    // --- cycle_accounting ------------------------------------------------
    {
      // Measured stalls on the predicted side: this check isolates the
      // claimed *issue* model from the stall model above.
      const double predicted = issue_cpe * accesses + stalls;
      const double scale = std::max(std::max(cycles, predicted), 1.0);
      CrosscheckFinding f;
      f.check = "cycle_accounting";
      f.cell_index = cell_index;
      f.factors = acc.factors;
      f.measured = cycles;
      f.predicted = predicted;
      f.rel_error = std::abs(cycles - predicted) / scale;
      f.flagged = f.rel_error > options.accounting_tolerance;
      f.note = describe_factors(table, acc.factors);
      if (f.flagged) ++report.contradictions;
      report.findings.push_back(std::move(f));
    }

    // --- effective_frequency ---------------------------------------------
    {
      const double lo = claimed.freq.min_ghz * (1.0 - options.frequency_tolerance);
      const double hi = claimed.freq.max_ghz * (1.0 + options.frequency_tolerance);
      CrosscheckFinding f;
      f.check = "effective_frequency";
      f.cell_index = cell_index;
      f.factors = acc.factors;
      f.measured = eff_ghz;
      const double nearest = std::clamp(eff_ghz, lo, hi);
      f.predicted = nearest;
      f.rel_error =
          nearest > 0.0 ? std::abs(eff_ghz - nearest) / nearest : 0.0;
      f.flagged = eff_ghz < lo || eff_ghz > hi;
      f.note = describe_factors(table, acc.factors);
      if (f.flagged) ++report.contradictions;
      report.findings.push_back(std::move(f));
    }
  }
  return report;
}

}  // namespace cal::stats
