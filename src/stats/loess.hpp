#pragma once
// LOESS: locally weighted linear regression.
//
// The smooth trend lines of the paper's Fig. 8 ("solid lines represent
// smoothed local regressions indicating measurement trends") are LOESS
// curves.  We implement the standard tricube-weighted local linear
// smoother with a span fraction, evaluated at arbitrary query points.

#include <span>
#include <vector>

namespace cal::stats {

struct LoessOptions {
  double span = 0.3;  ///< fraction of points in each local window (0, 1]
};

/// Smooths (xs, ys) and evaluates the fit at `query` points.
/// Points need not be sorted.  Requires at least 3 points.
std::vector<double> loess(std::span<const double> xs,
                          std::span<const double> ys,
                          std::span<const double> query,
                          LoessOptions options = {});

/// Convenience: evaluates at n_out evenly spaced x positions spanning the
/// data; returns {query_x, smoothed_y}.
struct LoessCurve {
  std::vector<double> x;
  std::vector<double> y;
};
LoessCurve loess_curve(std::span<const double> xs, std::span<const double> ys,
                       std::size_t n_out = 64, LoessOptions options = {});

}  // namespace cal::stats
