#pragma once
// Mode (multi-modality) detection.
//
// Fig. 11's lesson: with a real-time scheduler, bandwidth was *bimodal*
// (a high mode and a ~5x lower mode in 20-25% of runs), which mean +/- sd
// summaries hide entirely.  ModeSplit performs a 1-D two-means split and
// reports a separation score so analyses can flag "two modes" instead of
// "high variance".

#include <span>
#include <vector>

namespace cal::stats {

struct ModeSplit {
  double low_center = 0.0;
  double high_center = 0.0;
  std::size_t low_count = 0;
  std::size_t high_count = 0;
  double threshold = 0.0;   ///< boundary between the clusters
  double separation = 0.0;  ///< |high-low| / pooled within-cluster sd
  bool bimodal = false;     ///< separation above the decision threshold
                            ///< and both clusters non-trivial

  double low_fraction() const noexcept {
    const auto total = static_cast<double>(low_count + high_count);
    return total > 0 ? static_cast<double>(low_count) / total : 0.0;
  }
};

struct ModeOptions {
  /// Minimum separation to call the sample bimodal.  A two-means split of
  /// a pure Gaussian yields ~2.7 and of a uniform ~3.5, so the default
  /// stays above both; genuinely bimodal timing data (Fig. 11: modes 5x
  /// apart) scores an order of magnitude higher.
  double separation_threshold = 4.0;
  double min_fraction = 0.05;  ///< each mode must hold >= 5% of data
  std::size_t max_iterations = 64;
};

/// Two-means split of a 1-D sample (Lloyd iterations seeded at the
/// extremes).  Requires at least 2 points.
ModeSplit split_modes(std::span<const double> xs, ModeOptions options = {});

/// Histogram with equal-width bins over [min, max]; used by diagnostics
/// and tests to eyeball distributions.
struct Histogram {
  double lo = 0.0, hi = 0.0, bin_width = 0.0;
  std::vector<std::size_t> counts;

  /// Number of local maxima (modes) with count above `min_count`.
  std::size_t peak_count(std::size_t min_count = 1) const;
};

Histogram histogram(std::span<const double> xs, std::size_t bins);

}  // namespace cal::stats
