#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cal::stats {

Ecdf::Ecdf(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  if (sorted_.empty()) throw std::invalid_argument("Ecdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double p) const {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("Ecdf::quantile: p not in (0, 1]");
  }
  const auto n = static_cast<double>(sorted_.size());
  const auto idx = static_cast<std::size_t>(std::ceil(p * n)) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

double Ecdf::ks_distance(const Ecdf& a, const Ecdf& b) {
  // Evaluate both CDFs at every jump point of either.
  double d = 0.0;
  for (const auto& sample : {a.sorted_, b.sorted_}) {
    for (const double x : sample) {
      d = std::max(d, std::abs(a(x) - b(x)));
    }
  }
  return d;
}

}  // namespace cal::stats
