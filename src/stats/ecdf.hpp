#pragma once
// Empirical distribution characterization.
//
// The Confidence tool (Section II-B of the paper) argued that variability
// itself is a first-class characteristic of modern HPC systems, hidden by
// mean-reporting benchmarks.  Ecdf gives the analysis stage the empirical
// CDF of a raw sample: evaluation, quantile inversion, tail probabilities
// and a two-sample Kolmogorov-Smirnov distance for comparing campaigns
// ("similar inputs, completely different outputs").

#include <span>
#include <vector>

namespace cal::stats {

class Ecdf {
 public:
  /// Builds from a sample (copied and sorted).  Requires non-empty input.
  explicit Ecdf(std::span<const double> xs);

  /// F(x): fraction of the sample <= x.
  double operator()(double x) const;

  /// Smallest sample value v with F(v) >= p, p in (0, 1].
  double quantile(double p) const;

  /// P(X > x).
  double tail(double x) const { return 1.0 - (*this)(x); }

  std::size_t size() const noexcept { return sorted_.size(); }
  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }

  /// Kolmogorov-Smirnov statistic sup_x |F_a(x) - F_b(x)|.
  static double ks_distance(const Ecdf& a, const Ecdf& b);

 private:
  std::vector<double> sorted_;
};

}  // namespace cal::stats
