#include "stats/regression.hpp"

#include <cmath>
#include <stdexcept>

namespace cal::stats {

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("linear_fit: size mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("linear_fit: need at least 2 points");
  }
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }

  LinearFit fit;
  fit.n = xs.size();
  if (sxx == 0.0) {
    fit.slope = 0.0;
    fit.intercept = my;
    fit.rss = syy;
    fit.r2 = 0.0;
    fit.slope_stderr = 0.0;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.rss = syy - fit.slope * sxy;
  if (fit.rss < 0.0) fit.rss = 0.0;  // numeric guard
  fit.r2 = syy > 0.0 ? 1.0 - fit.rss / syy : 1.0;
  if (xs.size() > 2) {
    const double sigma2 = fit.rss / (n - 2.0);
    fit.slope_stderr = std::sqrt(sigma2 / sxx);
  }
  return fit;
}

double line_rss(std::span<const double> xs, std::span<const double> ys,
                double intercept, double slope) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("line_rss: size mismatch");
  }
  double rss = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (intercept + slope * xs[i]);
    rss += r * r;
  }
  return rss;
}

}  // namespace cal::stats
