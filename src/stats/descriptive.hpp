#pragma once
// Descriptive statistics for the offline analysis stage.
//
// Beyond the mean/sd pair (all that opaque tools keep), the analysis stage
// needs order statistics (median, quantiles, five-number boxplot summaries
// as in the paper's Fig. 12), robust dispersion (MAD), and streaming
// accumulation (Welford) for the opaque-engine emulation.

#include <cstddef>
#include <span>
#include <vector>

namespace cal::stats {

double mean(std::span<const double> xs);

/// Sample variance (n-1 denominator); 0 for n < 2.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);

/// Coefficient of variation sd/|mean|; 0 if mean == 0.
double coeff_variation(std::span<const double> xs);

double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Quantile with linear interpolation between order statistics
/// (R type-7, the default of quantile() in the paper's R scripts).
/// q in [0, 1]; requires non-empty input.
double quantile(std::span<const double> xs, double q);

double median(std::span<const double> xs);

/// Median absolute deviation (unscaled).
double mad(std::span<const double> xs);

/// Five-number summary + fences, the boxplot geometry of Fig. 12.
struct BoxplotSummary {
  double minimum = 0, q1 = 0, median = 0, q3 = 0, maximum = 0;
  double iqr = 0;
  double lower_fence = 0, upper_fence = 0;  ///< q1/q3 -/+ 1.5*iqr
  std::vector<double> outliers;             ///< points beyond the fences
};

BoxplotSummary boxplot(std::span<const double> xs);

/// Streaming mean/variance accumulator (Welford).  Numerically stable;
/// this is what a well-implemented opaque benchmark would use online.
class Welford {
 public:
  void add(double x) noexcept;

  /// Rehydrates an accumulator from externally tracked moments.  The
  /// moments must come from add()'s exact recurrence (the SIMD
  /// welford_fold kernels keep it), or determinism guarantees lapse.
  static Welford from_moments(std::size_t n, double mean,
                              double m2) noexcept;

  /// Folds another accumulator in (Chan's parallel update), as if every
  /// sample of `other` had been add()ed after this accumulator's own.
  /// Deterministic: merging the same partials in the same order always
  /// produces bit-identical state, which is what lets the query engine
  /// fold per-block partials in plan order at any thread count.
  void merge(const Welford& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;  ///< sample variance (n-1)
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace cal::stats
