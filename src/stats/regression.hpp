#pragma once
// Ordinary least squares, the workhorse of LogP-family calibration:
// T(s) = L + s/B fits, overhead fits o(s) = a + b*s, and the per-segment
// fits inside piecewise models.

#include <span>

namespace cal::stats {

struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;           ///< coefficient of determination
  double rss = 0.0;          ///< residual sum of squares
  double slope_stderr = 0.0; ///< standard error of the slope
  std::size_t n = 0;

  double predict(double x) const noexcept { return intercept + slope * x; }
};

/// Fits y = intercept + slope * x by OLS.  Requires xs.size() == ys.size()
/// and n >= 2.  A vertical cloud (all x equal) yields slope 0 and the mean
/// as intercept.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Residual sum of squares of an arbitrary (intercept, slope) line.
double line_rss(std::span<const double> xs, std::span<const double> ys,
                double intercept, double slope);

}  // namespace cal::stats
