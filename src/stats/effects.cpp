#include "stats/effects.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "stats/group.hpp"

namespace cal::stats {
namespace {

double total_ss(std::span<const double> xs, double grand_mean) {
  double ss = 0.0;
  for (const double x : xs) ss += (x - grand_mean) * (x - grand_mean);
  return ss;
}

double between_ss(const std::vector<Group>& groups, double grand_mean) {
  double ss = 0.0;
  for (const auto& group : groups) {
    const double m = mean(group.samples);
    ss += static_cast<double>(group.samples.size()) * (m - grand_mean) *
          (m - grand_mean);
  }
  return ss;
}

}  // namespace

FactorEffect main_effect(const RawTable& table, const std::string& factor,
                         const std::string& metric) {
  if (table.empty()) throw std::invalid_argument("main_effect: empty table");
  const auto response = table.metric_column(metric);
  const double grand_mean = mean(response);
  const double ss_total = total_ss(response, grand_mean);

  FactorEffect out;
  out.factor = factor;
  out.grand_mean = grand_mean;
  const auto groups = group_metric(table, {factor}, metric);
  for (const auto& group : groups) {
    LevelEffect level;
    level.level = group.key.front();
    level.n = group.samples.size();
    level.mean = mean(group.samples);
    level.effect = level.mean - grand_mean;
    out.max_abs_effect = std::max(out.max_abs_effect,
                                  std::abs(level.effect));
    out.levels.push_back(std::move(level));
  }
  out.variance_share =
      ss_total > 0.0 ? between_ss(groups, grand_mean) / ss_total : 0.0;
  return out;
}

std::vector<FactorEffect> main_effects(const RawTable& table,
                                       const std::string& metric) {
  std::vector<FactorEffect> out;
  out.reserve(table.factor_names().size());
  for (const auto& factor : table.factor_names()) {
    out.push_back(main_effect(table, factor, metric));
  }
  std::sort(out.begin(), out.end(),
            [](const FactorEffect& a, const FactorEffect& b) {
              return a.variance_share > b.variance_share;
            });
  return out;
}

InteractionEffect interaction_effect(const RawTable& table,
                                     const std::string& factor_a,
                                     const std::string& factor_b,
                                     const std::string& metric) {
  if (table.empty()) {
    throw std::invalid_argument("interaction_effect: empty table");
  }
  const auto response = table.metric_column(metric);
  const double grand_mean = mean(response);
  const double ss_total = total_ss(response, grand_mean);

  const double ss_a =
      between_ss(group_metric(table, {factor_a}, metric), grand_mean);
  const double ss_b =
      between_ss(group_metric(table, {factor_b}, metric), grand_mean);
  const double ss_cells = between_ss(
      group_metric(table, {factor_a, factor_b}, metric), grand_mean);

  InteractionEffect out;
  out.factor_a = factor_a;
  out.factor_b = factor_b;
  out.variance_share =
      ss_total > 0.0 ? std::max(ss_cells - ss_a - ss_b, 0.0) / ss_total : 0.0;
  return out;
}

}  // namespace cal::stats
