#include "stats/piecewise.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace cal::stats {

double PiecewiseFit::predict(double x) const {
  return segments[segment_of(x)].fit.predict(x);
}

std::size_t PiecewiseFit::segment_of(double x) const {
  if (segments.empty()) throw std::logic_error("PiecewiseFit: no segments");
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (x < segments[i].hi) return i;
  }
  return segments.size() - 1;
}

PiecewiseFit fit_piecewise(std::span<const double> xs,
                           std::span<const double> ys,
                           std::vector<double> breakpoints) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("fit_piecewise: size mismatch");
  }
  if (xs.empty()) throw std::invalid_argument("fit_piecewise: empty input");
  std::sort(breakpoints.begin(), breakpoints.end());

  PiecewiseFit out;
  out.breakpoints = breakpoints;
  out.n = xs.size();

  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> bounds;
  bounds.push_back(-inf);
  for (const double b : breakpoints) bounds.push_back(b);
  bounds.push_back(inf);

  const double global_mean = mean(ys);

  for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
    const double lo = bounds[s];
    const double hi = bounds[s + 1];
    std::vector<double> seg_x, seg_y;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (xs[i] >= lo && xs[i] < hi) {
        seg_x.push_back(xs[i]);
        seg_y.push_back(ys[i]);
      }
    }
    Segment seg;
    seg.lo = lo;
    seg.hi = hi;
    if (seg_x.size() >= 2) {
      seg.fit = linear_fit(seg_x, seg_y);
    } else {
      // Degenerate segment: constant at local (or global) mean; flagged
      // to the analyst via fit.n < 2.
      seg.fit.n = seg_x.size();
      seg.fit.slope = 0.0;
      seg.fit.intercept = seg_x.empty() ? global_mean : seg_y.front();
      seg.fit.rss = 0.0;
      seg.fit.r2 = 0.0;
    }
    out.total_rss += seg.fit.rss;
    out.segments.push_back(std::move(seg));
  }
  return out;
}

}  // namespace cal::stats
