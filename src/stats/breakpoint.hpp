#pragma once
// Breakpoint (protocol-change) detectors.
//
// The paper surveys how NetGauge, PLogP and LoOgGP detect piecewise-model
// breakpoints while measuring, and demonstrates that all of them can be
// misled by temporal perturbations (P1), biased size grids (P2) and
// preconceived breakpoint counts (P3).  We implement faithful versions of
// the three heuristics plus an offline dynamic-programming segmented
// least-squares detector that sees all raw data at once -- the style of
// analysis the white-box methodology makes possible.  The ablation bench
// `ablation_breakpoint_detectors` scores all four against the simulator's
// ground-truth protocol boundaries.

#include <functional>
#include <span>
#include <vector>

#include "stats/regression.hpp"

namespace cal::stats {

// ---------------------------------------------------------------------------
// NetGauge-style online detector.
//
// Fed points in measurement order (x ascending, as NetGauge sweeps sizes
// linearly).  Maintains an OLS fit over the current segment; when a new
// measurement's deviation from the fit exceeds `factor` times the fit's
// residual scale (the least-squares deviation criterion the paper
// describes), it notes a tentative break and waits for `confirm_points`
// further deviating measurements before committing it -- the "five new
// measurements" rule that is supposed to keep anomalous measurements from
// misleading the detection (and, per pitfall P1, fails to when the
// anomaly is a sustained perturbation window).
// ---------------------------------------------------------------------------
class NetGaugeDetector {
 public:
  struct Options {
    double factor = 4.0;            ///< deviation multiple triggering suspicion
    std::size_t confirm_points = 5; ///< points needed to confirm a change
    std::size_t min_segment = 6;    ///< points before a segment can break
    double rel_floor = 0.01;        ///< residual floor: fraction of |y_hat|
  };

  NetGaugeDetector() : NetGaugeDetector(Options{}) {}
  explicit NetGaugeDetector(Options options);

  /// Feeds the next measurement (x must be non-decreasing).
  void add(double x, double y);

  /// Breakpoints committed so far (x positions).
  const std::vector<double>& breakpoints() const noexcept { return breaks_; }

  /// Per-segment fits over the data seen so far (closing the open segment).
  std::vector<LinearFit> segment_fits() const;

 private:
  /// OLS fit over the accepted points of the current segment.
  LinearFit accepted_fit() const;

  Options options_;
  std::vector<double> xs_, ys_;
  std::size_t segment_start_ = 0;
  std::size_t accepted_end_ = 0;   ///< exclusive end of accepted points
  std::size_t tentative_index_ = 0;
  std::size_t tentative_count_ = 0;
  bool tentative_ = false;
  std::vector<double> breaks_;
};

// ---------------------------------------------------------------------------
// PLogP-style adaptive sampler.
//
// Doubles the message size; at each new point, linearly extrapolates the
// previous two measurements and, if the new measurement deviates by more
// than `tolerance`, bisects the interval (halving, up to `max_attempts`)
// to localize the change.  The detector *drives* measurement, so it takes
// a sampling callback -- exactly the entanglement of design and
// measurement the paper criticizes.
// ---------------------------------------------------------------------------
class PLogPProber {
 public:
  struct Options {
    double tolerance = 0.25;       ///< relative deviation from extrapolation
    std::size_t max_attempts = 6;  ///< bisection depth per suspected change
  };

  using Sampler = std::function<double(double x)>;

  PLogPProber() : PLogPProber(Options{}) {}
  explicit PLogPProber(Options options);

  /// Probes sizes from x_min, doubling up to x_max.  Returns all sampled
  /// points in probing order.
  struct Result {
    std::vector<double> xs, ys;       ///< in probing order
    std::vector<double> breakpoints;  ///< localized protocol changes
  };
  Result probe(const Sampler& sample, double x_min, double x_max);

 private:
  Options options_;
};

// ---------------------------------------------------------------------------
// LoOgGP-style offline neighborhood detector.
//
// Offline, with analyst mediation: removes outliers (IQR fences on
// detrended residuals), then flags any measurement whose residual is the
// maximum within a +/- `neighborhood` window and exceeds `z_min` robust
// z-scores.  The paper notes the outcome is sensitive to the neighborhood
// extent and the sweep's step size -- our tests demonstrate both.
// ---------------------------------------------------------------------------
struct LoOgGPOptions {
  std::size_t neighborhood = 5;  ///< half-width, in points
  double z_min = 3.0;            ///< robust z threshold on residuals
};

std::vector<double> loogp_breakpoints(std::span<const double> xs,
                                      std::span<const double> ys,
                                      LoOgGPOptions options = {});

// ---------------------------------------------------------------------------
// Offline segmented least squares (dynamic programming).
//
// Sees the full raw dataset; finds the segmentation minimizing
//     sum of per-segment RSS  +  penalty * (#segments)
// with O(n^2 K) DP, then selects the number of segments by a BIC-style
// criterion unless `exact_segments` pins it.  This is the "neutral look
// regarding the number of breakpoints" of Fig. 4.
// ---------------------------------------------------------------------------
struct SegmentedOptions {
  std::size_t max_segments = 5;
  std::size_t min_points_per_segment = 3;
  std::size_t exact_segments = 0;  ///< 0 = choose by BIC
};

struct SegmentedFit {
  std::vector<double> breakpoints;  ///< interior break x positions
  std::vector<LinearFit> segments;
  double total_rss = 0.0;
  std::size_t chosen_segments = 1;
};

SegmentedFit segmented_least_squares(std::span<const double> xs,
                                     std::span<const double> ys,
                                     SegmentedOptions options = {});

// ---------------------------------------------------------------------------
// Scoring against ground truth.
// ---------------------------------------------------------------------------
struct BreakpointScore {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Matches detected against true breakpoints greedily; a detection within
/// `rel_tolerance * true_x` (or abs_floor) counts as a hit.
BreakpointScore score_breakpoints(std::span<const double> detected,
                                  std::span<const double> truth,
                                  double rel_tolerance = 0.25,
                                  double abs_floor = 8.0);

}  // namespace cal::stats
