#pragma once
// Group-by aggregation over raw tables.
//
// The analysis stage routinely needs "bandwidth by (size, stride)" or
// "time by message size" views.  group_metric() buckets records by the
// values of one or more factors and returns per-group samples, preserving
// sequence order inside each group so temporal diagnostics stay possible.

#include <string>
#include <vector>

#include "core/record.hpp"
#include "stats/descriptive.hpp"

namespace cal::stats {

struct Group {
  std::vector<Value> key;          ///< values of the grouping factors
  std::vector<double> samples;     ///< metric values, in sequence order
  std::vector<std::size_t> sequence;  ///< engine sequence index per sample
};

/// Groups `metric` by the listed factors.  Groups are ordered by key
/// (Value ordering, lexicographic across factors).
std::vector<Group> group_metric(const RawTable& table,
                                const std::vector<std::string>& factors,
                                const std::string& metric);

/// One aggregated row per group.
struct GroupSummary {
  std::vector<Value> key;
  std::size_t n = 0;
  double mean = 0.0;
  double sd = 0.0;
  double median = 0.0;
  double q1 = 0.0;
  double q3 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

std::vector<GroupSummary> summarize_groups(
    const RawTable& table, const std::vector<std::string>& factors,
    const std::string& metric);

}  // namespace cal::stats
