#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cal::stats {
namespace {

std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  return s;
}

}  // namespace

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double coeff_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / std::abs(m);
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  const auto s = sorted_copy(xs);
  if (s.size() == 1) return s.front();
  const double h = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, s.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return s[lo] + frac * (s[hi] - s[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double mad(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mad: empty input");
  const double med = median(xs);
  std::vector<double> dev(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) dev[i] = std::abs(xs[i] - med);
  return median(dev);
}

BoxplotSummary boxplot(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("boxplot: empty input");
  BoxplotSummary b;
  b.q1 = quantile(xs, 0.25);
  b.median = quantile(xs, 0.5);
  b.q3 = quantile(xs, 0.75);
  b.iqr = b.q3 - b.q1;
  b.lower_fence = b.q1 - 1.5 * b.iqr;
  b.upper_fence = b.q3 + 1.5 * b.iqr;
  b.minimum = min_value(xs);
  b.maximum = max_value(xs);
  for (const double x : xs) {
    if (x < b.lower_fence || x > b.upper_fence) b.outliers.push_back(x);
  }
  return b;
}

void Welford::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

Welford Welford::from_moments(std::size_t n, double mean,
                              double m2) noexcept {
  Welford w;
  w.n_ = n;
  w.mean_ = mean;
  w.m2_ = m2;
  return w;
}

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  n_ += other.n_;
}

double Welford::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace cal::stats
