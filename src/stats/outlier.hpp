#pragma once
// Outlier handling: filters (what opaque tools do silently) and
// diagnostics (what the methodology does instead).
//
// The paper's complaint is not that outliers are detected, but that they
// are *silently removed* before the analyst ever sees them -- hiding real
// phenomena such as the bimodal scheduler modes of Fig. 11.  We provide
// both behaviours so the ablation benches can show the difference.

#include <cstddef>
#include <span>
#include <vector>

namespace cal::stats {

/// Indices of points outside the IQR fences (q1/q3 -/+ k*iqr).
std::vector<std::size_t> iqr_outliers(std::span<const double> xs,
                                      double k = 1.5);

/// Indices of points with |z| > threshold (mean/sd based).
std::vector<std::size_t> zscore_outliers(std::span<const double> xs,
                                         double threshold = 3.0);

/// Copy with the given indices removed (the opaque behaviour).
std::vector<double> remove_indices(std::span<const double> xs,
                                   std::span<const std::size_t> indices);

/// Outlier diagnostic for the analyst: how many, how extreme, and whether
/// they are temporally clustered (suggesting a perturbation window, as in
/// Fig. 11 right) rather than i.i.d. noise.
struct OutlierDiagnosis {
  std::vector<std::size_t> indices;   ///< positions of flagged points
  double fraction = 0.0;              ///< flagged / total
  double max_abs_z = 0.0;             ///< most extreme robust z-score
  bool temporally_clustered = false;  ///< flagged points adjacent in time
  double clustering_score = 0.0;      ///< observed/expected adjacent pairs
};

/// Flags by robust z (median/MAD) and tests temporal clustering assuming
/// xs is ordered by measurement sequence.
OutlierDiagnosis diagnose_outliers(std::span<const double> xs,
                                   double z_threshold = 3.5);

}  // namespace cal::stats
